"""True-parallel engine: one OS process per ParaSolver rank.

The :class:`ProcessEngine` is the third engine of the family (DESIGN.md
§5e).  Where the SimEngine simulates and the ThreadEngine shares one GIL,
this engine launches every rank in its own ``multiprocessing.Process``
(spawn context — no inherited state, same start semantics on every
platform) and routes *all* traffic through the binary wire codec over a
pluggable transport: ``multiprocessing.Pipe`` by default, TCP sockets
with a rank/token hello handshake when ``config.net_transport == "tcp"``.

Failure story: a child that dies (killed, crashed, injected
``SolverCrash`` → hard ``os._exit``) is observed by the parent — dead
process sentinel, closed pipe, or heartbeat silence — and funneled into
:meth:`LoadCoordinator.note_rank_death`, the same reclaim/continue path
PR 1 built for heartbeat timeouts.  The run degrades gracefully and never
claims a proven optimum over a lost subtree.

The worker entry point lives at module top level so the spawn context can
import it; everything shipped to a child is plain picklable data (no
sockets, no handles — TCP children dial back and authenticate).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.cip.params import ParamSet
from repro.exceptions import CommError
from repro.obs.trace import Tracer
from repro.ug.config import UGConfig
from repro.ug.faults import FaultInjector, make_retrying_send
from repro.ug.load_coordinator import LoadCoordinator
from repro.ug.messages import LOAD_COORDINATOR_RANK, Message, MessageTag, SeqStamper
from repro.ug.net.channel import MessageChannel, attach_run_tracer
from repro.ug.net.transport import (
    PipeTransport,
    TcpTransport,
    Transport,
    TransportClosedError,
    make_hello_token,
    recv_hello,
    send_hello,
    hello_token_matches,
    tcp_listener,
)
from repro.ug.para_solver import ParaSolver
from repro.ug.user_plugins import UserPlugins

#: child exit codes the parent maps onto death reasons
EXIT_OK = 0
EXIT_COMM_LOST = 13  # parent vanished mid-run
EXIT_INJECTED_CRASH = 42  # FaultPlan SolverCrash fired inside the child


@dataclass
class _SolverSpec:
    """Everything a spawned worker needs, as plain picklable data."""

    rank: int
    instance: Any
    user_plugins: UserPlugins
    params: ParamSet
    seed: int
    config: UGConfig
    # TCP mode only: dial-back coordinates; None means a Pipe rides along
    tcp_addr: tuple[str, int] | None = None
    tcp_token: bytes = b""


def _child_transport(spec: _SolverSpec, conn: Any) -> Transport:
    if spec.tcp_addr is None:
        return PipeTransport(conn)
    transport = TcpTransport.connect(
        spec.tcp_addr[0],
        spec.tcp_addr[1],
        connect_timeout=spec.config.net_connect_timeout,
        connect_retries=spec.config.net_connect_retries,
        max_outbound=spec.config.net_outbound_queue,
        jitter_seed=spec.rank,
    )
    # authenticate before any protocol frame: the listener drops dialers
    # that don't present the run's token with the right rank
    send_hello(transport.sock, spec.rank, spec.tcp_token)
    return transport


def _worker_main(spec: _SolverSpec, conn: Any) -> None:
    """Process entry point for one spawn-per-run ParaSolver rank."""
    try:
        code = _worker_loop(spec, conn)
    except (TransportClosedError, EOFError, BrokenPipeError):
        code = EXIT_COMM_LOST
    except KeyboardInterrupt:  # pragma: no cover - operator interrupt
        code = EXIT_COMM_LOST
    # _exit: skip atexit/teardown races in a dying worker — the parent
    # only cares about the code
    os._exit(code)


def _pooled_worker_main(conn: Any) -> None:
    """Entry point for a *reusable* (warm-pool) worker, pipe mode only.

    The worker is armed by a pickled :class:`_SolverSpec` arriving on the
    Connection — the same trust boundary as spawn args, NOT the wire
    codec, which stays pickle-free — runs one full ParaSolver lifetime,
    marks the run boundary with a RESET frame, and loops back for the
    next spec.  ``None`` retires the worker; any abnormal run exit
    (injected crash, lost coordinator) kills the process exactly like a
    spawn-per-run worker, so a tainted worker can never re-enter the pool.
    """
    code = EXIT_OK
    try:
        while True:
            spec = conn.recv()  # parent-controlled pickle, like spawn args
            if spec is None:
                break
            code = _worker_loop(spec, conn, reusable=True)
            if code != EXIT_OK:
                break
    except (TransportClosedError, EOFError, BrokenPipeError, OSError):
        code = EXIT_COMM_LOST
    except KeyboardInterrupt:  # pragma: no cover - operator interrupt
        code = EXIT_COMM_LOST
    os._exit(code)


def _worker_loop(spec: _SolverSpec, conn: Any, reusable: bool = False) -> int:
    config = spec.config
    solver = ParaSolver(
        rank=spec.rank,
        instance=spec.instance,
        user_plugins=spec.user_plugins,
        params=spec.params,
        seed=spec.seed,
        status_interval_work=config.status_interval_work,
        min_open_to_shed=config.min_open_to_shed,
        objective_epsilon=config.objective_epsilon,
        transfer_batch=config.net_batch_nodes,
    )
    injector = FaultInjector(config.fault_plan)
    channel = MessageChannel(
        _child_transport(spec, conn),
        local_rank=spec.rank,
        remote_rank=LOAD_COORDINATOR_RANK,
        stamper=SeqStamper(),
        injector=injector,
    )
    t0 = time.perf_counter()
    busy_wall = 0.0

    def raw_send(dst: int, tag: MessageTag, payload: Any) -> None:
        injector.check_send(spec.rank)
        # ride the wall-clock busy total along on status/termination
        # reports so the parent can fill UGStatistics.solver_busy without
        # a second accounting channel
        if isinstance(payload, dict) and tag in (MessageTag.STATUS, MessageTag.TERMINATED):
            payload = dict(payload, busy_wall=busy_wall)
        # coalesce: everything a handling/work burst produces rides one
        # BATCH frame, flushed at the loop's seams below
        channel.queue(dst, tag, payload)

    def flush() -> None:
        if not channel.flush():
            raise TransportClosedError("coordinator is gone")

    def finish() -> int:
        """Graceful run end.  Spawn-per-run: flush and close (a TCP
        worker's goodbye frames sit in the sender queue; ``close()``
        drains them).  Pooled: mark the run boundary with RESET and keep
        the pipe open for the next spec.  Injected crashes skip all of
        this on purpose — they must look like a kill, not a leave."""
        flush()
        if reusable:
            if not channel.send(LOAD_COORDINATOR_RANK, MessageTag.RESET, {"rank": spec.rank}):
                return EXIT_COMM_LOST
            return EXIT_OK
        channel.close()
        return EXIT_OK

    send = make_retrying_send(raw_send, config, injector, real_time=True)
    poll = max(config.net_poll_interval, 1e-4)
    while solver.state != "terminated":
        now = time.perf_counter() - t0
        if injector.maybe_crash(spec.rank, now, solver.nodes_processed_total):
            return EXIT_INJECTED_CRASH  # die abruptly, exactly like a kill
        if solver.is_busy:
            # busy wall-clock covers the whole working burst — message
            # decode/handling, the solver step and the encode/flush — so
            # idle_ratio counts only genuine waiting-for-work time
            t_work = time.perf_counter()
            while True:
                msg = channel.recv(0.0)
                if msg is None:
                    break
                solver.handle_message(msg, send)
                if solver.state == "terminated":
                    busy_wall += time.perf_counter() - t_work
                    return finish()
            flush()
            if not solver.is_busy:
                busy_wall += time.perf_counter() - t_work
                continue
            solver.do_work(send)
            flush()
            busy_wall += time.perf_counter() - t_work
        else:
            msg = channel.recv(poll)
            if msg is not None:
                t_work = time.perf_counter()
                solver.handle_message(msg, send)
                flush()
                busy_wall += time.perf_counter() - t_work
    return finish()


# -- warm worker pool --------------------------------------------------------------


class _WarmWorkerPool:
    """Process-local pool of idle reusable workers (pipe transport).

    Spawning a worker costs a full interpreter start plus the numpy/scipy
    import cascade — over a second on small machines, which dwarfs many
    whole solves.  The pool keeps gracefully finished workers parked in
    ``conn.recv()`` so the next run re-arms them with a fresh spec
    instead of paying spawn-per-run.  Only workers that completed the
    RESET handshake are ever released back; crashed, drained-then-dead or
    fault-injected workers take the spawn path and die with their run.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._idle: list[tuple[Any, Any]] = []  # (process, parent Connection)

    def acquire(self) -> tuple[Any, Any] | None:
        with self._lock:
            while self._idle:
                proc, conn = self._idle.pop()
                if proc.is_alive():
                    return proc, conn
                conn.close()  # died while parked; discard
        return None

    def release(self, proc: Any, conn: Any) -> None:
        with self._lock:
            if proc.is_alive():
                self._idle.append((proc, conn))
                return
        conn.close()

    def warm(self, n: int, ctx: Any = None) -> int:
        """Pre-spawn workers until ``n`` sit idle; returns how many were
        actually spawned.  Call before timing-sensitive runs (benchmarks,
        serving) so no measured run pays interpreter start-up."""
        ctx = ctx or multiprocessing.get_context("spawn")
        with self._lock:
            missing = max(0, n - len(self._idle))
        fresh: list[tuple[Any, Any]] = []
        for _ in range(missing):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_pooled_worker_main,
                args=(child_conn,),
                name="ParaSolver-pooled",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            fresh.append((proc, parent_conn))
        with self._lock:
            self._idle.extend(fresh)
        return len(fresh)

    def size(self) -> int:
        with self._lock:
            return len(self._idle)

    def shutdown(self) -> None:
        """Retire every parked worker (None sentinel, then reap)."""
        with self._lock:
            idle, self._idle = self._idle, []
        for _proc, conn in idle:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc, conn in idle:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.kill()
                proc.join(timeout=2.0)
            conn.close()


#: the module-level pool shared by every ProcessEngine in this process
WORKER_POOL = _WarmWorkerPool()


def warm_pool(n: int) -> int:
    """Pre-spawn ``n`` idle pooled workers; returns how many were spawned."""
    return WORKER_POOL.warm(n)


class ProcessEngine:
    """Distributed-memory engine over spawned worker processes."""

    def __init__(
        self,
        lc: LoadCoordinator,
        solvers: dict[int, ParaSolver],
        config: UGConfig,
        tracer: Tracer | None = None,
    ) -> None:
        self.lc = lc
        # the parent's solver objects are templates only: each child
        # rebuilds its ParaSolver from the spec, so no state is shared
        self.solvers = solvers
        self.config = config
        self.injector = FaultInjector(config.fault_plan)
        lc.fault_injector = self.injector
        self.tracer = attach_run_tracer(tracer, config, lc, solvers)
        self.channels: dict[int, MessageChannel] = {}
        self.procs: dict[int, multiprocessing.process.BaseProcess] = {}
        self._busy: dict[int, float] = {r: 0.0 for r in solvers}
        self._down: set[int] = set()
        self._t0 = 0.0
        # per-rank alive intervals: idle_ratio charges each rank only for
        # the wall time its process actually existed (a late joiner or an
        # early-drained rank must not be billed for the full run span)
        self._alive_since: dict[int, float] = {}
        self._alive_span: dict[int, float] = {}
        self._last_death_poll = 0.0
        # injected-delay timers: cancelled in _shutdown so a late firing
        # can never race a closing channel
        self._timers: list[threading.Timer] = []
        # warm-pool bookkeeping: ranks running in a reusable worker, and
        # ranks whose worker was already parked back into the pool
        self._use_pool = False
        self._pooled: set[int] = set()
        self._parked: set[int] = set()
        # launch plumbing kept on self so a rank can also be spawned
        # *after* launch (ClusterSupervisor joins)
        self._ctx = multiprocessing.get_context("spawn")
        self._lc_stamper = SeqStamper()
        self._mode = ""
        self._listener: Any = None
        self._tcp_addr: tuple[str, int] | None = None
        self._token = b""

    # -- launch ------------------------------------------------------------------

    def _spec_for(self, rank: int, tcp_addr: tuple[str, int] | None, token: bytes) -> _SolverSpec:
        # launch ranks carry their template's identity; a late joiner has
        # no template, so it inherits the LoadCoordinator's run identity
        # (presolved instance, base params, seed)
        solver = self.solvers.get(rank)
        return _SolverSpec(
            rank=rank,
            instance=solver.instance if solver is not None else self.lc.instance,
            user_plugins=solver.user_plugins if solver is not None else self.lc.user_plugins,
            params=solver.base_params if solver is not None else self.lc.params,
            seed=solver.seed if solver is not None else self.lc.seed,
            config=self.config,
            tcp_addr=tcp_addr,
            tcp_token=token,
        )

    def _launch(self) -> None:
        mode = self.config.net_transport
        if mode not in ("pipe", "tcp"):
            raise CommError(f"unknown net_transport {mode!r} (want 'pipe' or 'tcp')")
        self._mode = mode
        # the pool is pipe-only (a pooled worker keeps its Connection
        # across runs; TCP workers dial per run) and never mixes with
        # fault plans: an injected crash must kill a process for real,
        # and replay determinism assumes spawn-fresh workers
        self._use_pool = (
            mode == "pipe" and self.config.net_warm_pool and self.config.fault_plan is None
        )
        if mode == "tcp":
            self._listener = tcp_listener()
            self._tcp_addr = self._listener.getsockname()
            self._token = make_hello_token()
        for rank in sorted(self.solvers):
            self._spawn_rank(rank)
        if self._listener is not None:
            try:
                self._accept_tcp(self._listener, self._token, self._lc_stamper)
            finally:
                self._close_listener()

    def _spawn_rank(self, rank: int) -> None:
        """Fork one worker process; pipe mode wires its channel immediately,
        TCP mode waits for the dial-back.  With the warm pool on, pipe mode
        re-arms a parked worker (or spawns a reusable one) instead."""
        if self._mode == "pipe":
            if self._use_pool:
                proc, parent_conn = self._arm_pooled(rank)
            else:
                parent_conn, child_conn = self._ctx.Pipe(duplex=True)
                proc = self._ctx.Process(
                    target=_worker_main,
                    args=(self._spec_for(rank, None, b""), child_conn),
                    name=f"ParaSolver-{rank}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
            transport: Transport = PipeTransport(parent_conn)
            self.channels[rank] = self._make_channel(rank, transport, self._lc_stamper)
        else:
            proc = self._ctx.Process(
                target=_worker_main,
                args=(self._spec_for(rank, self._tcp_addr, self._token), None),
                name=f"ParaSolver-{rank}",
                daemon=True,
            )
            proc.start()
        self.procs[rank] = proc
        self._alive_since[rank] = self._now()

    def _arm_pooled(self, rank: int) -> tuple[Any, Any]:
        """Hand a spec to a pooled worker, reusing a parked one if any."""
        spec = self._spec_for(rank, None, b"")
        while True:
            acquired = WORKER_POOL.acquire()
            if acquired is None:
                break
            proc, parent_conn = acquired
            try:
                parent_conn.send(spec)
            except (BrokenPipeError, OSError):
                parent_conn.close()  # died between park and reuse
                continue
            self._pooled.add(rank)
            self.lc.metrics.inc("warm_pool_reuses")
            return proc, parent_conn
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_pooled_worker_main,
            args=(child_conn,),
            name=f"ParaSolver-{rank}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        parent_conn.send(spec)
        self._pooled.add(rank)
        return proc, parent_conn

    def _close_listener(self) -> None:
        """Initial accepts done; the static engine needs no more dial-ins.
        (The ClusterSupervisor overrides this to keep admitting joiners.)"""
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    def _accept_tcp(self, listener: Any, token: bytes, stamper: SeqStamper) -> None:
        deadline = time.monotonic() + self.config.net_connect_timeout * max(len(self.solvers), 1)
        listener.settimeout(1.0)
        while len(self.channels) < len(self.solvers):
            if time.monotonic() > deadline:
                missing = sorted(set(self.solvers) - set(self.channels))
                raise CommError(f"ranks {missing} never dialed in")
            try:
                sock, _addr = listener.accept()
            except OSError:
                continue
            hello = recv_hello(sock, self.config.net_connect_timeout)
            if hello is None:
                sock.close()
                continue
            rank, got_token = hello
            if (
                not hello_token_matches(got_token, token)
                or rank not in self.solvers
                or rank in self.channels
            ):
                sock.close()  # stranger (or duplicate): not our worker
                continue
            sock.settimeout(None)
            transport = TcpTransport(sock, max_outbound=self.config.net_outbound_queue)
            self.channels[rank] = self._make_channel(rank, transport, stamper)

    def _make_channel(self, rank: int, transport: Transport, stamper: SeqStamper) -> MessageChannel:
        return MessageChannel(
            transport,
            local_rank=LOAD_COORDINATOR_RANK,
            remote_rank=rank,
            stamper=stamper,
            injector=self.injector,
            metrics=self.lc.metrics,
            tracer=self.tracer,
            clock=self._now,
        )

    # -- parent-side plumbing ----------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _lc_send_raw(self, dst: int, tag: MessageTag, payload: Any) -> None:
        self.injector.check_send(LOAD_COORDINATOR_RANK)
        channel = self.channels.get(dst)
        if channel is None:
            if dst in self._parked:
                return  # worker already back in the pool: black hole, like a closed channel
            raise CommError(f"unknown rank {dst}")
        msg = Message(tag=tag, src=LOAD_COORDINATOR_RANK, dst=dst, payload=payload, seq=channel.stamper())
        action, extra_delay = self.injector.message_action(msg)
        if action == "drop":
            return
        if action == "delay" and extra_delay > 0:
            # guard + track: a Timer that fires after _shutdown closed the
            # channel must not race the transport (send_message itself
            # black-holes a closed transport; the guard skips the common
            # case, _shutdown cancels whatever hasn't fired yet)
            def _deliver_late(channel: MessageChannel = channel, msg: Message = msg) -> None:
                if not channel.closed:
                    channel.send_message(msg)

            timer = threading.Timer(extra_delay, _deliver_late)
            timer.daemon = True
            self._timers.append(timer)
            timer.start()
            return
        channel.send_message(msg)  # False (dead peer) = black hole

    def _end_alive(self, rank: int) -> None:
        """Close out a rank's alive interval (idempotent)."""
        since = self._alive_since.pop(rank, None)
        if since is not None:
            self._alive_span[rank] = self._alive_span.get(rank, 0.0) + max(self._now() - since, 0.0)

    def _park_pooled(self, rank: int) -> None:
        """RESET received: the worker finished its run gracefully — return
        it to the pool and retire the rank without closing the Connection."""
        proc = self.procs.pop(rank, None)
        channel = self.channels.pop(rank, None)
        self._end_alive(rank)
        self._parked.add(rank)
        if proc is None or channel is None or channel.closed:
            return
        conn = getattr(channel.transport, "conn", None)
        if conn is None:  # pragma: no cover - pooled ranks are pipe-only
            return
        WORKER_POOL.release(proc, conn)

    def _note_death(self, rank: int, send: Any, reason: str) -> None:
        if rank in self._down:
            return
        self._down.add(rank)
        self._end_alive(rank)
        channel = self.channels.get(rank)
        if channel is not None and not channel.closed:
            channel.close()
        self.lc.note_rank_death(rank, send, self._now(), reason=reason)

    def _poll_deaths(self, send: Any) -> None:
        lc = self.lc
        for rank, proc in list(self.procs.items()):
            if rank in self._down or proc.is_alive():
                continue
            if lc.finished:
                return
            if rank in lc.draining:
                # graceful exit in flight: its DRAINED may still sit in the
                # pipe — deliver before classifying the exit
                self._drain_channel(rank, send)
            if rank in lc.departed:
                # drain completed: retire the channel without a death note
                self._down.add(rank)
                self._end_alive(rank)
                channel = self.channels.get(rank)
                if channel is not None and not channel.closed:
                    channel.close()
                continue
            self._note_death(rank, send, reason=f"process exited (code {proc.exitcode})")

    def _drain_channel(self, rank: int, send: Any) -> None:
        """Deliver whatever frames an exited rank left buffered."""
        channel = self.channels.get(rank)
        if channel is None or channel.closed:
            return
        lc = self.lc
        while not lc.finished:
            try:
                msg = channel.recv(0.0)
            except TransportClosedError:
                return
            if msg is None:
                return
            if msg.tag is MessageTag.RESET:
                continue  # pooled run-boundary marker, not a protocol message
            now = self._now()
            if isinstance(msg.payload, dict) and "busy_wall" in msg.payload:
                self._busy[msg.src] = float(msg.payload["busy_wall"])
            lc.handle_message(msg, send, now)
            lc.on_tick(send, now)

    def _membership_tick(self, send: Any) -> None:
        """Hook for runtime membership changes (no-op in the static engine;
        the ClusterSupervisor admits joiners and fires drains here)."""

    def _wait_readable(self, timeout: float) -> None:
        waitable = []
        for rank, channel in self.channels.items():
            if rank in self._down or channel.closed:
                continue
            transport = channel.transport
            obj = getattr(transport, "conn", None) or getattr(transport, "sock", None)
            if obj is not None:
                waitable.append(obj)
        if waitable:
            multiprocessing.connection.wait(waitable, timeout)
        else:
            time.sleep(timeout)

    # -- main loop ---------------------------------------------------------------

    def run(self) -> None:
        lc = self.lc
        self._t0 = time.perf_counter()
        self._launch()
        send = make_retrying_send(self._lc_send_raw, self.config, self.injector, real_time=True)
        lc.start(send, 0.0)
        poll = max(self.config.net_poll_interval, 1e-4)
        tracer = self.tracer
        while not lc.finished:
            now = self._now()
            if now >= self.config.time_limit or lc.nodes_processed_total() >= self.config.node_limit:
                lc.interrupt(send, now)
                break
            self._membership_tick(send)
            if lc.finished:
                break
            progressed = False
            for rank in sorted(self.channels):
                if rank in self._down or lc.finished:
                    continue
                channel = self.channels.get(rank)
                if channel is None:  # parked mid-scan by a RESET
                    continue
                while not lc.finished:
                    try:
                        msg = channel.recv(0.0)
                    except TransportClosedError:
                        self._note_death(rank, send, reason="connection closed")
                        break
                    if msg is None:
                        break
                    progressed = True
                    if msg.tag is MessageTag.RESET:
                        # a drained pooled worker finished its run mid-flight:
                        # park it for reuse and stop reading this rank
                        if rank in self._pooled:
                            self._park_pooled(rank)
                        break
                    now = self._now()
                    if tracer.enabled:
                        tracer.emit(now, "deliver", LOAD_COORDINATOR_RANK, src=msg.src, tag=msg.tag.value)
                    if isinstance(msg.payload, dict) and "busy_wall" in msg.payload:
                        self._busy[msg.src] = float(msg.payload["busy_wall"])
                    lc.handle_message(msg, send, now)
                    lc.on_tick(send, now)
            if lc.finished:
                break
            # death checks cost a waitpid per rank — poll-interval cadence
            # is plenty (a dead rank's pipe also trips TransportClosedError)
            now = self._now()
            if now - self._last_death_poll >= poll or not progressed:
                self._poll_deaths(send)
                self._last_death_poll = now
            lc.on_tick(send, self._now())
            if not progressed:
                self._wait_readable(poll)
        self._shutdown()
        lc.stats.solver_busy = dict(self._busy)
        self.injector.export_stats(lc.stats)
        # idle_ratio over *alive intervals*: each rank is charged only for
        # the wall time its process existed, clipped to the run span — not
        # span × nranks, which billed late joiners and early leavers for
        # the whole run and made elastic/drain runs look artificially idle
        span = lc.stats.computing_time or self._now()
        for rank in list(self._alive_since):
            self._end_alive(rank)
        alive = {r: min(s, span) for r, s in self._alive_span.items()}
        total = sum(alive.values())
        if total <= 0.0:  # pragma: no cover - no rank ever launched
            total = span * max(len(self.procs), 1)
        busy = sum(min(b, alive.get(r, span)) for r, b in self._busy.items())
        lc.metrics.set("idle_ratio", max(0.0, 1.0 - busy / total) if total > 0 else 0.0)

    def _shutdown(self) -> None:
        """Give children the grace period to honor TERMINATION, then reap.
        Pooled workers are drained to their RESET marker and parked for
        reuse instead of being joined to death."""
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        deadline = time.monotonic() + self.config.net_shutdown_grace
        if self._pooled:
            self._release_pooled(deadline)
        for proc in self.procs.values():
            proc.join(timeout=max(deadline - time.monotonic(), 0.1))
        for rank, proc in self.procs.items():
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.kill()
                proc.join(timeout=5.0)
        for channel in self.channels.values():
            if not channel.closed:
                channel.close()

    def _release_pooled(self, deadline: float) -> None:
        """Drain each healthy pooled rank to its RESET marker, then park it.
        A rank that never RESETs inside the grace period (wedged mid-step)
        falls through to the normal join/kill path."""
        for rank in sorted(self._pooled):
            proc = self.procs.get(rank)
            channel = self.channels.get(rank)
            if proc is None or channel is None:
                continue  # already parked mid-run (drain path)
            if rank in self._down or channel.closed or not proc.is_alive():
                continue
            parked = False
            while time.monotonic() < deadline:
                try:
                    msg = channel.recv(0.02)
                except TransportClosedError:
                    break
                if msg is None:
                    if not proc.is_alive():
                        break
                    continue
                # late end-of-run frames: keep the busy accounting, drop
                # the rest — the coordinator is already finished
                if isinstance(msg.payload, dict) and "busy_wall" in msg.payload:
                    self._busy[msg.src] = float(msg.payload["busy_wall"])
                if msg.tag is MessageTag.RESET:
                    parked = True
                    break
            if parked:
                self._park_pooled(rank)
