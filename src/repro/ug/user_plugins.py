"""The UserPlugins interface — the ScipUserPlugins analogue.

This is the *only* thing an application author writes to parallelize a
customized CIP solver: how to presolve the instance once at the
LoadCoordinator, how to build a base-solver handle for a received
subproblem (performing the second presolving layer), how to serialize an
extracted tree node, and (optionally) the racing parameter sets. The
shipped glue files in :mod:`repro.apps` each do this in well under 200
lines, reproducing the paper's headline claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cip.params import ParamSet
from repro.ug.para_node import ParaNode
from repro.ug.para_solution import ParaSolution


@dataclass
class HandleStep:
    """Result of one base-solver step inside a ParaSolver.

    ``work`` is the deterministic work-unit cost of the step (virtual
    seconds under the SimEngine; informational under threads).
    """

    finished: bool
    work: float
    dual_bound: float
    n_open: int
    solutions: list[ParaSolution] = field(default_factory=list)
    nodes_processed: int = 0
    # base-solver termination status (a SolveStatus value string, e.g.
    # "optimal" or "numerical_error"); empty for legacy handles.  UG uses
    # it to distinguish a contained numerical failure from a clean finish.
    status: str = ""


class SolverHandle:
    """A running base-solver instance working on one subproblem.

    Concrete handles wrap a :class:`~repro.cip.solver.CIPSolver` (plus
    application state such as the re-presolved Steiner graph).
    """

    def step(self) -> HandleStep:
        """Process one B&B node; must be reentrant between messages."""
        raise NotImplementedError

    def attach_telemetry(self, tracer: Any, rank: int = 0) -> None:
        """Point the wrapped kernel at the run's shared tracer so
        quarantine/failover/budget events land in the UG trace.
        Default: no-op (handles without a CIP kernel)."""
        return None

    def extract_para_node(self) -> ParaNode | None:
        """Remove one heavy open node in solver-independent form, or None."""
        raise NotImplementedError

    def inject_incumbent_value(self, value: float) -> None:
        """Install an externally found primal bound."""
        raise NotImplementedError

    def dual_bound(self) -> float:
        raise NotImplementedError

    def n_open(self) -> int:
        raise NotImplementedError


class UserPlugins:
    """Application glue: build handles, serialize nodes, racing settings."""

    #: human-readable base-solver name, used for ug[<name>, <lib>] naming
    base_solver_name: str = "CIP"

    def presolve_instance(self, instance: Any, params: ParamSet, seed: int) -> Any:
        """LoadCoordinator-level presolve (first layer); default: identity."""
        return instance

    def root_para_node(self, instance: Any) -> ParaNode:
        """The root subproblem (empty payload by default)."""
        return ParaNode(payload={})

    def create_handle(
        self,
        instance: Any,
        node: ParaNode,
        params: ParamSet,
        seed: int,
        incumbent: ParaSolution | None,
    ) -> SolverHandle:
        """Build a base solver for ``node`` (second presolving layer here)."""
        raise NotImplementedError

    def racing_param_sets(self, n: int, base: ParamSet) -> list[ParamSet]:
        """Parameter sets for racing ramp-up (customized racing hook).

        The default diversifies only the permutation seed, the minimal
        diversification the paper describes for FiberSCIP.
        """
        return [base.with_changes(permutation_seed=k) for k in range(n)]
