"""Instantiation facade: build and run a ug[<base solver>, <library>].

The factory mirrors the paper's naming scheme: a UG-parallelized solver
is named after its base solver and communication library, e.g.
``ug[SteinerJack, C++11]`` (ThreadEngine) or ``ug[SteinerJack, SimMPI]``
(virtual-time SimEngine standing in for MPI runs, cf. DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cip.params import ParamSet
from repro.exceptions import CommError
from repro.obs.trace import Tracer
from repro.ug.checkpoint import load_checkpoint
from repro.ug.config import UGConfig
from repro.ug.engines import SimEngine, ThreadEngine
from repro.ug.load_coordinator import LoadCoordinator
from repro.ug.para_solution import ParaSolution
from repro.ug.para_solver import ParaSolver
from repro.ug.statistics import UGStatistics
from repro.ug.user_plugins import UserPlugins

_LIBRARIES = {
    "sim": "SimMPI",
    "threads": "C++11",
    # distributed-memory engines (repro.ug.net): real processes over the
    # wire codec, and their deterministic single-threaded loopback twin
    "process": "MPI",
    "loopback": "NetLoop",
}


@dataclass
class UGResult:
    """Outcome of a ug[...] run."""

    name: str
    incumbent: ParaSolution | None
    dual_bound: float
    stats: UGStatistics
    solved: bool
    # the run's event trace (empty unless config.trace_enabled)
    trace: Tracer | None = None

    @property
    def objective(self) -> float:
        return float("inf") if self.incumbent is None else self.incumbent.value

    @property
    def trace_dropped(self) -> int:
        """Events evicted by the trace ring buffer during this run.

        Non-zero means the trace is partial: the ``repro.verify`` tree
        auditors will refuse to certify it (raise
        ``UGConfig.trace_capacity`` to capture the full stream).  Also
        mirrored on ``stats.trace_events_dropped``.
        """
        return 0 if self.trace is None else self.trace.dropped


@dataclass
class UGSolver:
    """A configured parallel solver instance."""

    instance: Any
    user_plugins: UserPlugins
    n_solvers: int
    comm: str = "sim"
    params: ParamSet = field(default_factory=ParamSet)
    config: UGConfig = field(default_factory=UGConfig)
    seed: int = 0
    wall_clock_limit: float = float("inf")

    def __post_init__(self) -> None:
        if self.comm not in _LIBRARIES:
            raise CommError(f"unknown comm {self.comm!r}; choose from {sorted(_LIBRARIES)}")
        if self.n_solvers < 1:
            raise CommError("need at least one ParaSolver")

    @property
    def name(self) -> str:
        return f"ug[{self.user_plugins.base_solver_name}, {_LIBRARIES[self.comm]}]"

    def run(
        self,
        restart_from: str | None = None,
        initial_incumbent: ParaSolution | None = None,
        tracer: Tracer | None = None,
    ) -> UGResult:
        """Execute the run; optionally restart from a checkpoint file.

        ``tracer`` injects a pre-built :class:`~repro.obs.trace.Tracer`
        instead of letting the engine construct one from the config —
        callers that need to observe the event stream *while the run is
        in flight* (the ``repro.serve`` per-job progress streams) hold a
        reference and poll ``Tracer.events_since``.

        Restarting re-applies the LoadCoordinator-level presolve (a fresh
        LoadCoordinator is built) and seeds the pool with the checkpoint's
        primitive nodes — exactly the paper's restart mechanism.  A
        corrupted or truncated primary checkpoint falls back to the newest
        valid rotated ``.bak`` copy (counted in
        ``stats.checkpoints_recovered``), so a crash mid-write never
        strands a campaign.
        ``initial_incumbent`` seeds a known solution without a checkpoint
        (the paper's Table 3 pattern: rerun from scratch with the best
        solution, usable for presolving, propagation and heuristics).
        """
        initial_pool = None
        recovered_from_backup = False
        if restart_from is not None:
            cp = load_checkpoint(restart_from)
            recovered_from_backup = cp.recovered
            initial_pool = cp.nodes
            if cp.incumbent is not None and (
                initial_incumbent is None or cp.incumbent.value < initial_incumbent.value
            ):
                initial_incumbent = cp.incumbent

        lc = LoadCoordinator(
            self.instance,
            self.user_plugins,
            self.params,
            self.config,
            self.n_solvers,
            self.seed,
            initial_pool=initial_pool,
            initial_incumbent=initial_incumbent,
        )
        if recovered_from_backup:
            lc.stats.checkpoints_recovered += 1
        if restart_from is not None:
            # shape-changing restart support: the checkpoint may have been
            # written at a different rank count — audit that the restored
            # frontier covers the saved one node for node before solving
            from repro.verify.restart import audit_restart_coverage

            audit_restart_coverage(cp, lc.restored_nodes).raise_if_failed()
            saved_ranks = cp.meta.get("n_ranks")
            if saved_ranks is not None and int(saved_ranks) != self.n_solvers:
                lc.metrics.inc("shape_restarts")
        solvers = {
            rank: ParaSolver(
                rank,
                lc.instance,
                self.user_plugins,
                self.params,
                self.seed,
                status_interval_work=self.config.status_interval_work,
                min_open_to_shed=self.config.min_open_to_shed,
                objective_epsilon=self.config.objective_epsilon,
                transfer_batch=self.config.net_batch_nodes,
            )
            for rank in range(1, self.n_solvers + 1)
        }
        engine: Any
        if self.comm == "sim":
            engine = SimEngine(
                lc, solvers, self.config, wall_clock_limit=self.wall_clock_limit, tracer=tracer
            )
        elif self.comm == "threads":
            engine = ThreadEngine(lc, solvers, self.config, tracer=tracer)
        elif self.comm == "process":
            if self.config.cluster_plan is not None:
                from repro.ug.cluster import ClusterSupervisor

                engine = ClusterSupervisor(lc, solvers, self.config, tracer=tracer)
            else:
                from repro.ug.net.process_engine import ProcessEngine

                engine = ProcessEngine(lc, solvers, self.config, tracer=tracer)
        else:  # "loopback"
            from repro.ug.net.loopback_engine import LoopbackNetEngine

            engine = LoopbackNetEngine(lc, solvers, self.config, tracer=tracer)
        engine.run()
        if engine.tracer is not None and engine.tracer.dropped:
            lc.metrics.set("trace_events_dropped", engine.tracer.dropped)

        solved = (
            lc.incumbent is not None
            and lc.proven_complete
            and (lc.stats.solved_in_racing or (lc.pool_size() == 0 and not lc.active))
        )
        dual = lc.stats.dual_final if solved else lc.global_dual_bound()
        return UGResult(self.name, lc.incumbent, dual, lc.stats, solved, trace=engine.tracer)


def ug(
    instance: Any,
    user_plugins: UserPlugins,
    n_solvers: int,
    comm: str = "sim",
    params: ParamSet | None = None,
    config: UGConfig | None = None,
    seed: int = 0,
    wall_clock_limit: float = float("inf"),
) -> UGSolver:
    """Build a ug[<base solver>, <library>] parallel solver.

    This is the entire user-facing parallelization API: pass the instance,
    the application's :class:`UserPlugins` glue and a solver count.
    """
    return UGSolver(
        instance,
        user_plugins,
        n_solvers,
        comm,
        params or ParamSet(),
        config or UGConfig(),
        seed,
        wall_clock_limit,
    )
