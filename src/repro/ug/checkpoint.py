"""Checkpoint files: primitive nodes + incumbent, JSON on disk.

The paper's checkpointing strategy saves only *primitive* nodes — nodes
with no ancestor in the LoadCoordinator — which keeps files tiny at the
cost of regenerating subtrees after a restart (Table 2 shows runs ending
with 271,781 open nodes restarting from just 18 saved ones). The restart
benefit: global presolve is re-applied to the instance.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import CheckpointError
from repro.ug.para_node import ParaNode
from repro.ug.para_solution import ParaSolution

_FORMAT_VERSION = 1


@dataclass
class Checkpoint:
    nodes: list[ParaNode]
    incumbent: ParaSolution | None
    meta: dict


def _encode_float(x: float) -> float | str:
    if math.isinf(x):
        return "inf" if x > 0 else "-inf"
    return x


def _decode_float(x: float | str) -> float:
    if isinstance(x, str):
        return math.inf if x == "inf" else -math.inf
    return float(x)


def save_checkpoint(path: str | os.PathLike, nodes: list[ParaNode], incumbent: ParaSolution | None, stats=None) -> None:
    """Atomically write a checkpoint file."""
    doc = {
        "version": _FORMAT_VERSION,
        "nodes": [
            {**n.to_json(), "dual_bound": _encode_float(n.dual_bound)} for n in nodes
        ],
        "incumbent": None if incumbent is None else incumbent.to_json(),
        "meta": {
            "nodes_generated": getattr(stats, "nodes_generated", 0),
            "transferred_nodes": getattr(stats, "transferred_nodes", 0),
        },
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=target.parent, prefix=target.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(doc, fh)
        os.replace(tmp, target)
    except OSError as exc:  # pragma: no cover - filesystem failure
        raise CheckpointError(f"cannot write checkpoint {target}: {exc}") from exc
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def load_checkpoint(path: str | os.PathLike) -> Checkpoint:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if doc.get("version") != _FORMAT_VERSION:
        raise CheckpointError(f"unsupported checkpoint version {doc.get('version')!r}")
    nodes = []
    for obj in doc["nodes"]:
        obj = dict(obj)
        obj["dual_bound"] = _decode_float(obj["dual_bound"])
        nodes.append(ParaNode.from_json(obj))
    incumbent = None if doc["incumbent"] is None else ParaSolution.from_json(doc["incumbent"])
    return Checkpoint(nodes, incumbent, doc.get("meta", {}))
