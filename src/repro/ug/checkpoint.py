"""Checkpoint files: primitive nodes + incumbent, JSON on disk — hardened.

The paper's checkpointing strategy saves only *primitive* nodes — nodes
with no ancestor in the LoadCoordinator — which keeps files tiny at the
cost of regenerating subtrees after a restart (Table 2 shows runs ending
with 271,781 open nodes restarting from just 18 saved ones). The restart
benefit: global presolve is re-applied to the instance.

Because the Table 2/3 campaigns only exist as checkpoint/restart *series*
(24-hour job kills, node losses), the files themselves must survive
hostile ends: every write carries a CRC32 checksum, is fsynced before the
atomic rename, and rotates the previous file into a ``.bak1``/``.bak2``…
chain; :func:`load_checkpoint` verifies the checksum and falls back to
the newest valid backup when the primary is truncated or corrupted.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import CheckpointError
from repro.ug.para_node import ParaNode
from repro.ug.para_solution import ParaSolution

_FORMAT_VERSION = 1
_CRC_KEY = "crc32"
# meta floats that may be +-inf and therefore travel through _encode_float
_META_FLOAT_KEYS = ("incumbent_value", "dual_bound")


@dataclass
class Checkpoint:
    nodes: list[ParaNode]
    incumbent: ParaSolution | None
    meta: dict
    #: file the data actually came from (a .bak on fallback)
    source: str = ""
    #: True when the primary file was unusable and a backup was loaded
    recovered: bool = False
    #: CheckpointError messages for every candidate that failed to load
    errors: list[str] = field(default_factory=list)


def _encode_float(x: float) -> float | str:
    if math.isinf(x):
        return "inf" if x > 0 else "-inf"
    return x


def _decode_float(x: float | str) -> float:
    if isinstance(x, str):
        return math.inf if x == "inf" else -math.inf
    return float(x)


def _canonical(doc: dict) -> bytes:
    """Stable serialization used both for the CRC and the file body."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()


def backup_path(path: str | os.PathLike, k: int) -> Path:
    """The k-th rotating backup of ``path`` (k=1 is the newest)."""
    p = Path(path)
    return p.with_name(f"{p.name}.bak{k}")


def _rotate_backups(target: Path, retain: int) -> None:
    """Shift target -> .bak1 -> .bak2 -> ... keeping ``retain`` backups."""
    if retain <= 0 or not target.exists():
        return
    oldest = backup_path(target, retain)
    if oldest.exists():
        oldest.unlink()
    for k in range(retain - 1, 0, -1):
        src = backup_path(target, k)
        if src.exists():
            os.replace(src, backup_path(target, k + 1))
    os.replace(target, backup_path(target, 1))


def rank_provenance(nodes: list[ParaNode]) -> dict[str, int]:
    """Histogram of primitive nodes by the rank that last held them.

    Rank 0 is the LoadCoordinator (a node never assigned, e.g. the root on
    a fresh run).  Recorded in every checkpoint's meta block so a restart
    onto a different cluster shape can still say where the saved frontier
    came from — and :func:`repro.verify.audit_restart_coverage` can check
    the restored pool covers it node for node.
    """
    hist: dict[str, int] = {}
    for node in nodes:
        key = str(getattr(node, "origin_rank", 0))
        hist[key] = hist.get(key, 0) + 1
    return hist


def save_checkpoint(
    path: str | os.PathLike,
    nodes: list[ParaNode],
    incumbent: ParaSolution | None,
    stats=None,
    meta: dict | None = None,
    retain: int = 0,
) -> None:
    """Atomically write a checkpoint file (checksummed, fsynced, rotated).

    ``meta`` extends the metadata block — the LoadCoordinator records the
    checkpoint's virtual/wall timestamps, incumbent value and global dual
    bound there so restart series can report bound trajectories (the
    Tables 2-3 campaign pattern).  ``retain`` > 0 keeps that many rotated
    ``.bakK`` copies of previous checkpoints for corruption fallback.
    """
    doc = {
        "version": _FORMAT_VERSION,
        "nodes": [
            {**n.to_json(), "dual_bound": _encode_float(n.dual_bound)} for n in nodes
        ],
        "incumbent": None if incumbent is None else incumbent.to_json(),
        "meta": {
            "nodes_generated": getattr(stats, "nodes_generated", 0),
            "transferred_nodes": getattr(stats, "transferred_nodes", 0),
            "solver_failures": getattr(stats, "solver_failures", 0),
            "nodes_reclaimed": getattr(stats, "nodes_reclaimed", 0),
            "rank_provenance": rank_provenance(nodes),
        },
    }
    if meta:
        extra = dict(meta)
        for key in _META_FLOAT_KEYS:
            if key in extra and isinstance(extra[key], float):
                extra[key] = _encode_float(extra[key])
        doc["meta"].update(extra)
    doc[_CRC_KEY] = zlib.crc32(_canonical({k: v for k, v in doc.items() if k != _CRC_KEY}))
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=target.parent, prefix=target.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(_canonical(doc))
            fh.flush()
            os.fsync(fh.fileno())
        _rotate_backups(target, retain)
        os.replace(tmp, target)
    except OSError as exc:  # pragma: no cover - filesystem failure
        raise CheckpointError(f"cannot write checkpoint {target}: {exc}") from exc
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _load_one(path: Path) -> Checkpoint:
    """Parse and verify a single checkpoint file, raising CheckpointError."""
    try:
        raw = path.read_text()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"checkpoint {path} is corrupt (bad JSON): {exc}") from exc
    if not isinstance(doc, dict):
        raise CheckpointError(f"checkpoint {path} is corrupt (not an object)")
    if doc.get("version") != _FORMAT_VERSION:
        raise CheckpointError(f"unsupported checkpoint version {doc.get('version')!r}")
    if _CRC_KEY in doc:  # legacy files without a checksum still load
        expected = doc[_CRC_KEY]
        actual = zlib.crc32(_canonical({k: v for k, v in doc.items() if k != _CRC_KEY}))
        if expected != actual:
            raise CheckpointError(
                f"checkpoint {path} failed its CRC32 check (stored {expected}, computed {actual})"
            )
    try:
        nodes = []
        for obj in doc["nodes"]:
            obj = dict(obj)
            obj["dual_bound"] = _decode_float(obj["dual_bound"])
            nodes.append(ParaNode.from_json(obj))
        incumbent = None if doc["incumbent"] is None else ParaSolution.from_json(doc["incumbent"])
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"checkpoint {path} is corrupt (bad structure): {exc}") from exc
    meta = dict(doc.get("meta", {}))
    for key in _META_FLOAT_KEYS:
        if key in meta and meta[key] is not None:
            meta[key] = _decode_float(meta[key])
    return Checkpoint(nodes, incumbent, meta, source=str(path))


def load_checkpoint(path: str | os.PathLike, fallback: bool = True) -> Checkpoint:
    """Read a checkpoint written by :func:`save_checkpoint`.

    With ``fallback`` (the default), a primary file that is missing,
    truncated or fails its checksum does not kill the restart: the newest
    valid rotated backup (``.bak1``, then ``.bak2``, ...) is loaded
    instead and the returned checkpoint is marked ``recovered``.
    """
    primary = Path(path)
    candidates = [primary]
    if fallback:
        k = 1
        while backup_path(primary, k).exists():
            candidates.append(backup_path(primary, k))
            k += 1
    errors: list[str] = []
    for candidate in candidates:
        try:
            cp = _load_one(candidate)
        except CheckpointError as exc:
            errors.append(str(exc))
            continue
        cp.recovered = candidate != primary
        cp.errors = errors
        return cp
    raise CheckpointError(
        "no usable checkpoint found; tried "
        + ", ".join(str(c) for c in candidates)
        + ": "
        + "; ".join(errors)
    )
