"""Message vocabulary of the Supervisor-Worker protocol (Algorithms 1-2)."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

_seq = itertools.count()


class MessageTag(enum.Enum):
    # Supervisor -> Worker
    SUBPROBLEM = "subproblem"
    INCUMBENT = "incumbent"
    START_COLLECTING = "startCollecting"
    STOP_COLLECTING = "stopCollecting"
    TERMINATION = "termination"
    RACING_START = "racingStart"
    RACING_WINNER = "racingWinner"
    RACING_LOSER = "racingLoser"
    # Worker -> Supervisor
    SOLUTION_FOUND = "solutionFound"
    STATUS = "status"
    TERMINATED = "terminated"
    NODE_TRANSFER = "nodeTransfer"


@dataclass(order=True)
class Message:
    """One protocol message; ordering key is (send seq) for determinism."""

    seq: int = field(init=False)
    tag: MessageTag = field(compare=False)
    src: int = field(compare=False)
    dst: int = field(compare=False)
    payload: Any = field(compare=False, default=None)

    def __post_init__(self) -> None:
        self.seq = next(_seq)


LOAD_COORDINATOR_RANK = 0
