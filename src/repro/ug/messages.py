"""Message vocabulary of the Supervisor-Worker protocol (Algorithms 1-2)."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any


class MessageTag(enum.Enum):
    # Supervisor -> Worker
    SUBPROBLEM = "subproblem"
    INCUMBENT = "incumbent"
    START_COLLECTING = "startCollecting"
    STOP_COLLECTING = "stopCollecting"
    TERMINATION = "termination"
    RACING_START = "racingStart"
    RACING_WINNER = "racingWinner"
    RACING_LOSER = "racingLoser"
    # Worker -> Supervisor
    SOLUTION_FOUND = "solutionFound"
    STATUS = "status"
    TERMINATED = "terminated"
    NODE_TRANSFER = "nodeTransfer"
    # elastic membership (repro.ug.cluster)
    DRAIN = "drain"  # Supervisor -> Worker: finish or hand back, then leave
    DRAINED = "drained"  # Worker -> Supervisor: leaving; carries the in-flight node
    JOIN = "join"  # Supervisor -> Worker: welcome packet (incumbent + settings)
    # warm worker pool (repro.ug.net.process_engine): a pooled worker marks
    # the end of a run with RESET and waits to be re-armed on a new instance
    RESET = "reset"


#: every Worker -> Supervisor message doubles as a liveness heartbeat: the
#: LoadCoordinator timestamps the sender on receipt, so no dedicated
#: heartbeat message (and no extra traffic) is needed — STATUS cadence
#: bounds the detection latency.
HEARTBEAT_TAGS = frozenset(
    {
        MessageTag.SOLUTION_FOUND,
        MessageTag.STATUS,
        MessageTag.TERMINATED,
        MessageTag.NODE_TRANSFER,
        MessageTag.DRAINED,
    }
)

#: tags still honoured from a rank already declared dead — a solution is a
#: solution no matter how late it arrives; everything else from a dead
#: rank is stale bookkeeping and is dropped to keep state consistent.
ACCEPTED_FROM_DEAD_TAGS = frozenset({MessageTag.SOLUTION_FOUND})


class SeqStamper:
    """Per-run message sequence numbers.

    Every engine (and every distributed rank) owns one stamper, so sequence
    spaces are scoped to a single run: back-to-back runs in one process no
    longer interleave their numbering, and two processes cannot collide —
    a wire message is identified by ``(src, seq)``, not by ``seq`` alone.
    """

    __slots__ = ("_counter",)

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)

    def __call__(self) -> int:
        # itertools.count.__next__ is atomic under CPython, so one stamper
        # can be shared by all of a ThreadEngine's solver threads
        return next(self._counter)


#: fallback sequence for Messages constructed without an explicit ``seq``
#: (unit tests, ad-hoc protocol driving).  Engine send paths always stamp
#: from their own per-run :class:`SeqStamper`; this module-global never
#: crosses an engine or process boundary.
_fallback_seq = SeqStamper()


@dataclass(order=True)
class Message:
    """One protocol message; ordering key is the send sequence number.

    ``seq`` is stamped by the sending engine's per-run :class:`SeqStamper`
    (or by the wire codec on decode); when omitted it falls back to a
    process-local counter so directly constructed messages still order by
    construction time.
    """

    tag: MessageTag = field(compare=False)
    src: int = field(compare=False)
    dst: int = field(compare=False)
    payload: Any = field(compare=False, default=None)
    seq: int | None = field(default=None, compare=True)

    def __post_init__(self) -> None:
        if self.seq is None:
            self.seq = _fallback_seq()


LOAD_COORDINATOR_RANK = 0
