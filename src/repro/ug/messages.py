"""Message vocabulary of the Supervisor-Worker protocol (Algorithms 1-2)."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

_seq = itertools.count()


class MessageTag(enum.Enum):
    # Supervisor -> Worker
    SUBPROBLEM = "subproblem"
    INCUMBENT = "incumbent"
    START_COLLECTING = "startCollecting"
    STOP_COLLECTING = "stopCollecting"
    TERMINATION = "termination"
    RACING_START = "racingStart"
    RACING_WINNER = "racingWinner"
    RACING_LOSER = "racingLoser"
    # Worker -> Supervisor
    SOLUTION_FOUND = "solutionFound"
    STATUS = "status"
    TERMINATED = "terminated"
    NODE_TRANSFER = "nodeTransfer"


#: every Worker -> Supervisor message doubles as a liveness heartbeat: the
#: LoadCoordinator timestamps the sender on receipt, so no dedicated
#: heartbeat message (and no extra traffic) is needed — STATUS cadence
#: bounds the detection latency.
HEARTBEAT_TAGS = frozenset(
    {MessageTag.SOLUTION_FOUND, MessageTag.STATUS, MessageTag.TERMINATED, MessageTag.NODE_TRANSFER}
)

#: tags still honoured from a rank already declared dead — a solution is a
#: solution no matter how late it arrives; everything else from a dead
#: rank is stale bookkeeping and is dropped to keep state consistent.
ACCEPTED_FROM_DEAD_TAGS = frozenset({MessageTag.SOLUTION_FOUND})


@dataclass(order=True)
class Message:
    """One protocol message; ordering key is (send seq) for determinism."""

    seq: int = field(init=False)
    tag: MessageTag = field(compare=False)
    src: int = field(compare=False)
    dst: int = field(compare=False)
    payload: Any = field(compare=False, default=None)

    def __post_init__(self) -> None:
        self.seq = next(_seq)


LOAD_COORDINATOR_RANK = 0
