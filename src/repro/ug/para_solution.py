"""Solver-independent solutions shared through the LoadCoordinator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass
class ParaSolution:
    """A primal solution: objective value + JSON-safe application payload."""

    value: float
    payload: Any = None

    def improves(self, other: "ParaSolution | None", eps: float = 1e-9) -> bool:
        return other is None or self.value < other.value - eps

    def to_json(self) -> dict[str, Any]:
        return {"value": self.value, "payload": self.payload}

    @staticmethod
    def from_json(obj: dict[str, Any]) -> "ParaSolution":
        return ParaSolution(float(obj["value"]), obj.get("payload"))
