"""Deterministic fault injection for the UG runtime.

The paper's headline campaigns (Tables 2-3) ran as checkpoint/restart
series across 24-hour job kills and node losses; surviving failures is a
core duty of the Supervisor, not an optional extra.  This module provides
the testing side of that story: a :class:`FaultPlan` describes *exactly*
which solver crashes, which messages are dropped or delayed, which
checkpoint writes are corrupted and which sends fail transiently — and a
:class:`FaultInjector` executes the plan at run time.

Because a plan is pure data and the SimEngine is a deterministic
discrete-event simulator, replaying the same plan yields bit-identical
runs: the same failure counters, the same reclaimed nodes, the same final
statistics.  The ThreadEngine consults the identical injector, so the
same scenarios exercise the real-thread path (without the bit-identical
guarantee).
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import CommError
from repro.ug.messages import Message, MessageTag


@dataclass(frozen=True)
class SolverCrash:
    """Kill ParaSolver ``rank`` once its clock or node count reaches a limit.

    A crashed solver simply stops responding — it never sends TERMINATED,
    exactly like a lost MPI rank.  Detection is the LoadCoordinator's job
    (heartbeat timeout).
    """

    rank: int
    at_time: float | None = None  # virtual (Sim) / wall (Thread) seconds
    at_nodes: int | None = None  # nodes_processed_total threshold

    def triggered(self, now: float, nodes: int) -> bool:
        if self.at_time is not None and now >= self.at_time:
            return True
        if self.at_nodes is not None and nodes >= self.at_nodes:
            return True
        return False


@dataclass(frozen=True)
class MessageFault:
    """Drop or delay up to ``count`` messages matching (tag, src, dst)."""

    tag: MessageTag | None = None  # None matches any tag
    src: int | None = None
    dst: int | None = None
    action: str = "drop"  # "drop" | "delay"
    delay: float = 0.0  # extra latency for action == "delay"
    count: int = 1

    def matches(self, msg: Message) -> bool:
        return (
            (self.tag is None or msg.tag is self.tag)
            and (self.src is None or msg.src == self.src)
            and (self.dst is None or msg.dst == self.dst)
        )


@dataclass(frozen=True)
class CheckpointFault:
    """Corrupt the ``nth_write``-th checkpoint file (1-based) after writing.

    ``mode == "truncate"`` cuts the file in half; ``mode == "corrupt"``
    overwrites a span of bytes in place (still bytes on disk, no longer a
    valid checkpoint — the CRC/parse check catches it).
    """

    nth_write: int
    mode: str = "corrupt"  # "corrupt" | "truncate"


@dataclass(frozen=True)
class FrameFault:
    """Damage up to ``count`` wire frames flowing ``src`` -> ``dst``.

    This is the transport seam of the net stack: ``drop`` loses the frame,
    ``corrupt`` flips a byte (the receiver's CRC check turns it into a
    typed decode error and the message is lost), ``truncate`` cuts the
    frame in half (same outcome via the length check).  ``None`` matches
    any rank.  Only the codec-backed paths (ThreadEngine delivery,
    loopback/process engines) consult frame faults; the SimEngine has no
    wire to damage.
    """

    src: int | None = None
    dst: int | None = None
    action: str = "corrupt"  # "drop" | "corrupt" | "truncate"
    count: int = 1

    def matches(self, src: int, dst: int) -> bool:
        return (self.src is None or self.src == src) and (self.dst is None or self.dst == dst)


@dataclass(frozen=True)
class SendFault:
    """Raise a transient CommError on sends from ``src``.

    Fails the ``nth_send``-th .. ``nth_send + count - 1``-th send attempts
    originating at rank ``src`` (1-based, counted per rank, retries
    included) — exercising the bounded retry/backoff wrapper.
    """

    src: int
    nth_send: int
    count: int = 1


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of failures for one run."""

    crashes: tuple[SolverCrash, ...] = ()
    message_faults: tuple[MessageFault, ...] = ()
    checkpoint_faults: tuple[CheckpointFault, ...] = ()
    send_faults: tuple[SendFault, ...] = ()
    frame_faults: tuple[FrameFault, ...] = ()

    @staticmethod
    def random_plan(
        seed: int,
        n_solvers: int,
        n_crashes: int = 1,
        n_message_drops: int = 0,
        crash_time_range: tuple[float, float] = (0.01, 0.5),
    ) -> "FaultPlan":
        """Generate a seeded random plan — same seed, same plan, same run."""
        rng = random.Random(seed)
        ranks = rng.sample(range(1, n_solvers + 1), min(n_crashes, n_solvers))
        lo, hi = crash_time_range
        crashes = tuple(
            SolverCrash(rank=r, at_time=round(rng.uniform(lo, hi), 6)) for r in sorted(ranks)
        )
        drops = tuple(
            MessageFault(tag=MessageTag.STATUS, src=rng.randint(1, n_solvers), count=1)
            for _ in range(n_message_drops)
        )
        return FaultPlan(crashes=crashes, message_faults=drops)


class FaultInjector:
    """Mutable run-time executor of a :class:`FaultPlan`.

    One injector serves one engine run; all decisions are functions of the
    plan plus the deterministic order in which the engine consults it.
    """

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan or FaultPlan()
        # one injector is shared by every ThreadEngine solver thread; the
        # budget/attempt read-modify-writes below must not interleave
        self._lock = threading.Lock()
        self.crashed: set[int] = set()
        self._message_budget = [f.count for f in self.plan.message_faults]
        self._frame_budget = [f.count for f in self.plan.frame_faults]
        self._send_attempts: dict[int, int] = {}
        self._checkpoint_writes = 0
        # counters mirrored into UGStatistics at the end of a run
        self.crashes_triggered = 0
        self.messages_dropped = 0
        self.messages_delayed = 0
        self.checkpoints_corrupted = 0
        self.send_failures_injected = 0
        self.send_retries = 0
        self.frame_faults_injected = 0

    @property
    def active(self) -> bool:
        return self.plan != FaultPlan()

    # -- solver crashes -------------------------------------------------------

    def is_crashed(self, rank: int) -> bool:
        return rank in self.crashed

    def maybe_crash(self, rank: int, now: float, nodes: int) -> bool:
        """True once ``rank`` is (or just became) dead; engines black-hole it."""
        with self._lock:
            if rank in self.crashed:
                return True
            for crash in self.plan.crashes:
                if crash.rank == rank and crash.triggered(now, nodes):
                    self.crashed.add(rank)
                    self.crashes_triggered += 1
                    return True
            return False

    # -- message faults -------------------------------------------------------

    def message_action(self, msg: Message) -> tuple[str, float]:
        """Returns ("deliver"|"drop"|"delay", extra_delay) for this message."""
        with self._lock:
            for i, fault in enumerate(self.plan.message_faults):
                if self._message_budget[i] > 0 and fault.matches(msg):
                    self._message_budget[i] -= 1
                    if fault.action == "drop":
                        self.messages_dropped += 1
                        return "drop", 0.0
                    self.messages_delayed += 1
                    return "delay", fault.delay
            return "deliver", 0.0

    # -- frame faults (transport seam) -----------------------------------------

    def frame_action(self, src: int, dst: int) -> str | None:
        """The plan's verdict for one wire frame: None (deliver intact),
        "drop", "corrupt" or "truncate"; budgets deplete deterministically
        in plan order."""
        if not self.plan.frame_faults:
            return None
        with self._lock:
            for i, fault in enumerate(self.plan.frame_faults):
                if self._frame_budget[i] > 0 and fault.matches(src, dst):
                    self._frame_budget[i] -= 1
                    self.frame_faults_injected += 1
                    return fault.action
            return None

    # -- transient send failures ----------------------------------------------

    def check_send(self, src: int) -> None:
        """Raise a transient CommError when the plan says this send fails."""
        with self._lock:
            attempt = self._send_attempts.get(src, 0) + 1
            self._send_attempts[src] = attempt
            for fault in self.plan.send_faults:
                if fault.src == src and fault.nth_send <= attempt < fault.nth_send + fault.count:
                    self.send_failures_injected += 1
                    raise CommError(
                        f"injected transient send failure at rank {src} (send #{attempt})"
                    )

    def note_retry(self) -> None:
        """Record one retried send (called by :class:`RetryingSend`)."""
        with self._lock:
            self.send_retries += 1

    # -- checkpoint corruption ------------------------------------------------

    def after_checkpoint_write(self, path: str | os.PathLike) -> None:
        """Called by the LoadCoordinator after every checkpoint write."""
        with self._lock:
            self._checkpoint_writes += 1
            for fault in self.plan.checkpoint_faults:
                if fault.nth_write == self._checkpoint_writes:
                    _damage_file(path, fault.mode)
                    self.checkpoints_corrupted += 1

    # -- statistics -----------------------------------------------------------

    def export_stats(self, stats: Any) -> None:
        """Copy injection counters onto a :class:`UGStatistics`."""
        stats.messages_dropped = self.messages_dropped
        stats.messages_delayed = self.messages_delayed
        stats.send_retries = self.send_retries
        stats.faults_injected = (
            self.crashes_triggered
            + self.messages_dropped
            + self.messages_delayed
            + self.checkpoints_corrupted
            + self.send_failures_injected
            + self.frame_faults_injected
        )


def _damage_file(path: str | os.PathLike, mode: str) -> None:
    try:
        size = os.path.getsize(path)
    except OSError:
        return
    if mode == "truncate":
        with open(path, "r+b") as fh:
            fh.truncate(max(size // 2, 1))
    else:  # corrupt: stomp a span of bytes in the middle
        with open(path, "r+b") as fh:
            fh.seek(max(size // 3, 0))
            fh.write(b"\x00CORRUPTED\x00" * 4)


@dataclass
class RetryingSend:
    """Bounded retry/backoff wrapper around a raw send function.

    Transient :class:`CommError`\\ s (lost packet, busy channel, an injected
    :class:`SendFault`) are retried up to ``retries`` times with
    exponential backoff; a persistent failure re-raises so real protocol
    bugs (unknown rank) still surface.  ``sleep`` is ``time.sleep`` under
    the ThreadEngine and ``None`` under the SimEngine (virtual time —
    retry immediately, determinism preserved).
    """

    send: Callable[[int, MessageTag, Any], None]
    retries: int = 3
    backoff: float = 0.0
    sleep: Callable[[float], None] | None = None
    injector: FaultInjector | None = None
    total_retries: int = field(default=0, init=False)

    def __call__(self, dst: int, tag: MessageTag, payload: Any) -> None:
        attempt = 0
        while True:
            try:
                self.send(dst, tag, payload)
                return
            except CommError:
                attempt += 1
                if attempt > self.retries:
                    raise
                self.total_retries += 1
                if self.injector is not None:
                    self.injector.note_retry()
                if self.sleep is not None and self.backoff > 0:
                    self.sleep(self.backoff * (2 ** (attempt - 1)))


def make_retrying_send(
    send: Callable[[int, MessageTag, Any], None],
    config: Any,
    injector: FaultInjector | None = None,
    real_time: bool = False,
) -> Callable[[int, MessageTag, Any], None]:
    """Wrap ``send`` per the config's retry policy (no-op when retries=0)."""
    retries = getattr(config, "send_retries", 0)
    if retries <= 0:
        return send
    return RetryingSend(
        send,
        retries=retries,
        backoff=getattr(config, "send_backoff", 0.0) if real_time else 0.0,
        sleep=time.sleep if real_time else None,
        injector=injector,
    )
