"""The ParaSolver state machine — Algorithm 2 of the paper.

A ParaSolver wraps a base solver (via the application's
:class:`~repro.ug.user_plugins.UserPlugins`) and interleaves solving with
communication: it reports solutions immediately, sends periodic status,
toggles collect mode on request and ships its best candidate subproblem
to the Supervisor while collecting.

The class is a pure event-driven state machine: ``handle_message`` and
``do_work`` never block, so the same code runs under real threads
(ThreadEngine) and under the virtual-time SimEngine.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.cip.params import ParamSet
from repro.exceptions import ReproError
from repro.obs.trace import NULL_TRACER
from repro.ug.messages import LOAD_COORDINATOR_RANK, Message, MessageTag
from repro.ug.para_node import ParaNode
from repro.ug.para_solution import ParaSolution
from repro.ug.user_plugins import SolverHandle, UserPlugins

SendFn = Callable[[int, MessageTag, Any], None]

# fallback work charge for steps that report none (keeps virtual time moving)
_MIN_STEP_WORK = 1e-5


class ParaSolver:
    """One worker of the Supervisor–Worker scheme."""

    def __init__(
        self,
        rank: int,
        instance: Any,
        user_plugins: UserPlugins,
        params: ParamSet,
        seed: int,
        status_interval_work: float = 0.05,
        min_open_to_shed: int = 4,
        objective_epsilon: float = 1e-9,
        transfer_batch: int = 1,
    ) -> None:
        if rank == LOAD_COORDINATOR_RANK:
            raise ValueError("rank 0 is reserved for the LoadCoordinator")
        self.rank = rank
        self.instance = instance
        self.user_plugins = user_plugins
        self.base_params = params
        self.seed = seed
        self.status_interval_work = status_interval_work
        self.min_open_to_shed = min_open_to_shed
        # nodes shed per collect step, coalesced into one NODE_TRANSFER
        # (config.net_batch_nodes; 1 = the classic one-node protocol)
        self.transfer_batch = max(1, int(transfer_batch))
        # must match the coordinator's pruning epsilon: with the integral
        # setting (1 - 1e-6) a worker reporting every 1e-9 improvement
        # would spam solutions the Supervisor rejects
        self.objective_epsilon = objective_epsilon
        # engine-attached telemetry sink; events use busy_work as clock
        self.tracer = NULL_TRACER

        self.state = "idle"  # idle | working | racing | terminated
        self.handle: SolverHandle | None = None
        self.collect_mode = False
        self.current_node: ParaNode | None = None
        self.best_known = math.inf
        self._work_since_status = 0.0
        self._first_step = False
        self.nodes_processed_total = 0
        self.busy_work = 0.0

    # -- message handling -------------------------------------------------------

    def handle_message(self, msg: Message, send: SendFn) -> None:
        tag = msg.tag
        if tag is MessageTag.TERMINATION:
            self.state = "terminated"
            self.handle = None
            return
        if tag is MessageTag.INCUMBENT:
            value = float(msg.payload["value"])
            if value < self.best_known:
                self.best_known = value
                if self.handle is not None:
                    self.handle.inject_incumbent_value(value)
            return
        if tag is MessageTag.START_COLLECTING:
            self.collect_mode = True
            return
        if tag is MessageTag.STOP_COLLECTING:
            self.collect_mode = False
            return
        if tag in (MessageTag.SUBPROBLEM, MessageTag.RACING_START):
            node: ParaNode = msg.payload["node"]
            params: ParamSet = msg.payload.get("settings") or self.base_params
            incumbent_value = msg.payload.get("incumbent")
            incumbent = None
            if incumbent_value is not None and math.isfinite(incumbent_value):
                self.best_known = min(self.best_known, float(incumbent_value))
                incumbent = ParaSolution(self.best_known)
            self.current_node = node
            # second layer of layered presolving happens inside create_handle
            self.handle = self.user_plugins.create_handle(
                self.instance, node, params, self.seed + self.rank, incumbent
            )
            # kernel-level robustness events (quarantine, LP failover,
            # budget stops) flow into the same run trace under this rank
            self.handle.attach_telemetry(self.tracer, self.rank)
            self.state = "racing" if tag is MessageTag.RACING_START else "working"
            self.collect_mode = False
            self._work_since_status = 0.0
            self._first_step = True
            return
        if tag is MessageTag.RACING_WINNER:
            # continue the race tree as the main worker and start shedding
            # open nodes so the Supervisor can feed the idle losers
            if self.state == "racing":
                self.state = "working"
            self.collect_mode = True
            return
        if tag is MessageTag.JOIN:
            # welcome packet for a late joiner: absorb the current incumbent
            # and the run's settings (e.g. the racing winner's ParamSet)
            payload = msg.payload or {}
            value = payload.get("incumbent")
            if value is not None and math.isfinite(value):
                self.best_known = min(self.best_known, float(value))
            settings = payload.get("settings")
            if settings is not None:
                self.base_params = settings
            return
        if tag is MessageTag.DRAIN:
            # graceful leave: hand the in-flight subproblem back (None when
            # idle) so the Supervisor re-queues it without burning a retry,
            # then retire this rank
            if self.state == "terminated":
                return
            node = self.current_node if self.is_busy else None
            send(
                LOAD_COORDINATOR_RANK,
                MessageTag.DRAINED,
                {
                    "rank": self.rank,
                    "node": node,
                    "nodes_processed": self.nodes_processed_total,
                },
            )
            self.state = "terminated"
            self.handle = None
            self.current_node = None
            self.collect_mode = False
            return
        if tag is MessageTag.RACING_LOSER:
            # discard the race tree; solutions were already reported
            self.handle = None
            self.current_node = None
            self.state = "idle"
            self.collect_mode = False
            send(LOAD_COORDINATOR_RANK, MessageTag.TERMINATED, {"racing_loser": True, "rank": self.rank})
            return
        raise AssertionError(f"ParaSolver {self.rank}: unexpected tag {tag}")

    # -- work --------------------------------------------------------------------

    def do_work(self, send: SendFn) -> float | None:
        """Advance the base solver by one node; returns work spent or None.

        A library-level failure inside the base solver (``ReproError``) is
        contained: the subproblem is surrendered back to the Supervisor
        with ``failed=True`` (which reclaims and retries it elsewhere) and
        this ParaSolver returns to the idle pool instead of taking the
        whole rank down.  Programming errors still propagate.
        """
        if self.state not in ("working", "racing") or self.handle is None:
            return None
        tracer = self.tracer
        try:
            step = self.handle.step()
        except ReproError:
            tracer.emit(self.busy_work, "step_failure", self.rank, nodes=self.nodes_processed_total)
            send(
                LOAD_COORDINATOR_RANK,
                MessageTag.TERMINATED,
                {"rank": self.rank, "failed": True, "nodes_processed": self.nodes_processed_total},
            )
            self.state = "idle"
            self.handle = None
            self.current_node = None
            self.collect_mode = False
            return _MIN_STEP_WORK
        work = max(step.work, _MIN_STEP_WORK)
        self.busy_work += work
        self.nodes_processed_total += step.nodes_processed
        if tracer.enabled:
            tracer.emit(
                self.busy_work,
                "step",
                self.rank,
                work=work,
                nodes=step.nodes_processed,
                dual=step.dual_bound,
                n_open=step.n_open,
                finished=step.finished,
            )

        for sol in step.solutions:
            if sol.value < self.best_known - self.objective_epsilon:
                self.best_known = sol.value
                tracer.emit(self.busy_work, "solution", self.rank, value=sol.value)
                send(LOAD_COORDINATOR_RANK, MessageTag.SOLUTION_FOUND, {"solution": sol, "rank": self.rank})

        if step.finished:
            if step.status == "numerical_error":
                # the kernel degraded (essential plugin failed) but kept a
                # valid dual bound: surrender the subproblem like a
                # contained step failure, flagged so the Supervisor can
                # account numerical trouble separately from crashes
                tracer.emit(
                    self.busy_work, "numerical_failure", self.rank, dual=step.dual_bound
                )
                send(
                    LOAD_COORDINATOR_RANK,
                    MessageTag.TERMINATED,
                    {
                        "rank": self.rank,
                        "failed": True,
                        "numerical": True,
                        "dual_bound": step.dual_bound,
                        "nodes_processed": self.nodes_processed_total,
                    },
                )
            else:
                send(
                    LOAD_COORDINATOR_RANK,
                    MessageTag.TERMINATED,
                    {
                        "rank": self.rank,
                        "dual_bound": step.dual_bound,
                        "nodes_processed": self.nodes_processed_total,
                    },
                )
            self.state = "idle"
            self.handle = None
            self.current_node = None
            self.collect_mode = False
            return work

        self._work_since_status += work
        if self._work_since_status >= self.status_interval_work or self._first_step:
            self._work_since_status = 0.0
            status: dict[str, Any] = {
                "rank": self.rank,
                "dual_bound": step.dual_bound,
                "n_open": step.n_open,
                "nodes_processed": self.nodes_processed_total,
                "state": self.state,
            }
            if self._first_step:
                status["first_step_work"] = work
                self._first_step = False
            send(LOAD_COORDINATOR_RANK, MessageTag.STATUS, status)
        if self.collect_mode and self.state == "working" and step.n_open >= self.min_open_to_shed:
            assert self.current_node is not None
            lineage = self.current_node.lineage + (
                (self.current_node.lc_id,) if self.current_node.lc_id >= 0 else ()
            )
            shed: list[ParaNode] = []
            # the first extraction keeps the classic n_open >= min_open_to_shed
            # gate; each further one must still leave min_open_to_shed nodes
            while len(shed) < self.transfer_batch and (
                not shed or step.n_open - len(shed) >= self.min_open_to_shed
            ):
                para = self.handle.extract_para_node()
                if para is None:
                    break
                para.lineage = lineage
                tracer.emit(self.busy_work, "shed", self.rank, dual=para.dual_bound, depth=para.depth)
                shed.append(para)
            if len(shed) == 1:
                send(LOAD_COORDINATOR_RANK, MessageTag.NODE_TRANSFER, {"node": shed[0], "rank": self.rank})
            elif shed:
                send(LOAD_COORDINATOR_RANK, MessageTag.NODE_TRANSFER, {"nodes": shed, "rank": self.rank})
        return work

    @property
    def is_busy(self) -> bool:
        return self.state in ("working", "racing")
