"""The LoadCoordinator — Algorithm 1 of the paper, plus racing ramp-up,
dynamic load balancing, checkpointing, restart and failure recovery.

The LoadCoordinator never touches a B&B tree: it keeps a small pool of
extracted :class:`ParaNode` subproblems, assigns them to idle solvers,
maintains the global incumbent, toggles collect mode when the pool runs
low on heavy subproblems, and periodically saves the primitive nodes.

Fault tolerance (the Tables 2-3 restart-series story): every message a
worker sends doubles as a heartbeat.  An *active* solver silent for
``config.heartbeat_timeout`` is declared dead; its assigned ParaNode is
reclaimed into the pool (re-numbered, so stale lineage cannot collide)
and handed to a survivor.  The run degrades gracefully — it terminates
correctly even when every solver dies — and a base-solver step failure
reported by a live ParaSolver is likewise contained by reclaiming the
node, with a bounded retry count so one poisonous subproblem cannot loop
forever.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from typing import Any, Callable

from repro.cip.params import ParamSet
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.ug.checkpoint import save_checkpoint
from repro.ug.config import UGConfig
from repro.ug.messages import ACCEPTED_FROM_DEAD_TAGS, LOAD_COORDINATOR_RANK, Message, MessageTag
from repro.ug.para_node import ParaNode
from repro.ug.para_solution import ParaSolution
from repro.ug.statistics import UGStatistics
from repro.ug.user_plugins import UserPlugins

SendFn = Callable[[int, MessageTag, Any], None]


class LoadCoordinator:
    """Supervisor of the Supervisor–Worker scheme."""

    def __init__(
        self,
        instance: Any,
        user_plugins: UserPlugins,
        params: ParamSet,
        config: UGConfig,
        n_solvers: int,
        seed: int = 0,
        initial_pool: list[ParaNode] | None = None,
        initial_incumbent: ParaSolution | None = None,
    ) -> None:
        self.user_plugins = user_plugins
        self.params = params
        self.config = config
        self.n_solvers = n_solvers
        self.seed = seed
        # layered presolving, first layer: presolve the instance once here
        self.instance = user_plugins.presolve_instance(instance, params, seed)

        self._pool: list[tuple[float, int, ParaNode]] = []
        self._pool_seq = itertools.count()
        self._lc_ids = itertools.count()
        # membership is a *runtime* property (repro.ug.cluster): ranks may
        # join after launch (fresh ids from _next_rank) and leave either
        # gracefully (DRAIN -> departed) or by dying (-> dead)
        self.ranks: set[int] = set(range(1, n_solvers + 1))
        self._next_rank = n_solvers + 1
        self.draining: set[int] = set()
        self._drain_requested: dict[int, float] = {}
        self.departed: set[int] = set()
        self.idle: set[int] = set(range(1, n_solvers + 1))
        self.active: dict[int, ParaNode] = {}
        self.collecting: set[int] = set()
        self.incumbent: ParaSolution | None = initial_incumbent
        self.finished = False
        self.stats = UGStatistics(n_solvers=n_solvers)
        # the registry is the single mutation pathway for the run
        # statistics; every update write-throughs onto self.stats so
        # mid-run readers (checkpoints, tests) always see a live snapshot
        self.metrics = MetricsRegistry(sink=self.stats)
        # engine-attached telemetry sink (NULL_TRACER outside engines)
        self.tracer = NULL_TRACER
        self._trace_now = 0.0
        self._last_status: dict[int, dict[str, Any]] = {}
        self._nodes_processed: dict[int, int] = {}
        self._solver_dual: dict[int, float] = {}
        self._racing = False
        self._racing_settings: list[ParamSet] = []
        self._settings_of_rank: dict[int, int] = {}
        self._root_reported = False
        self._last_checkpoint = 0.0
        self._terminated_racers: set[int] = set()
        self._restart_pool = list(initial_pool or [])
        # fault tolerance: dead ranks, per-rank last-heard timestamps, and a
        # flag raised when a subproblem had to be abandoned (so we never
        # claim a proven optimum over an incompletely explored tree); the
        # abandoned subtrees' best dual bound caps the global bound, since
        # the lost region may hide solutions down to that value
        self.dead: set[int] = set()
        self._last_heartbeat: dict[int, float] = {}
        self._lost_subtrees = False
        self._lost_dual = math.inf
        self._racing_root_dual = -math.inf
        # set by the engine so injected checkpoint corruption replays
        # deterministically; None outside fault-injection runs
        self.fault_injector: Any = None
        # incumbent broadcast debounce (config.net_incumbent_debounce)
        self._pending_incumbent = False
        self._last_incumbent_broadcast = -math.inf
        if self.incumbent is not None:
            self.stats.primal_initial = self.incumbent.value
        if self._restart_pool:
            self.stats.dual_initial = min(n.dual_bound for n in self._restart_pool)
        # immutable snapshot of the restored frontier, so repro.verify can
        # audit that a (possibly shape-changing) restart covers the saved
        # checkpoint even after the live nodes are renumbered and assigned
        self.restored_nodes: tuple[ParaNode, ...] = tuple(
            ParaNode.from_json(n.to_json()) for n in self._restart_pool
        )
        self.metrics.set("peak_ranks", n_solvers)

    # -- lifecycle ---------------------------------------------------------------

    def start(self, send: SendFn, now: float) -> None:
        """Initial distribution: restart pool, racing, or single-root."""
        self._trace_now = now
        if self._restart_pool:
            for node in self._restart_pool:
                self._push_pool(node, renumber=True)
            self._restart_pool = []
            self._assign(send, now)
            return
        root = self.user_plugins.root_para_node(self.instance)
        if self.config.ramp_up == "racing" and self.n_solvers >= 2:
            self._racing = True
            self._racing_root_dual = root.dual_bound
            self._racing_settings = self.user_plugins.racing_param_sets(self.n_solvers, self.params)
            for rank in sorted(self.idle):
                settings = self._racing_settings[(rank - 1) % len(self._racing_settings)]
                self._settings_of_rank[rank] = ((rank - 1) % len(self._racing_settings)) + 1
                node = ParaNode(payload=dict(root.payload), dual_bound=root.dual_bound)
                node.lc_id = next(self._lc_ids)
                node.origin_rank = rank
                self.active[rank] = node
                self._last_heartbeat[rank] = now
                self.tracer.emit(
                    now, "racing_start", rank, settings=self._settings_of_rank[rank], lc_id=node.lc_id
                )
                send(
                    rank,
                    MessageTag.RACING_START,
                    {"node": node, "settings": settings, "incumbent": self._incumbent_value()},
                )
            self.idle.clear()
            self._record_active(now)
            self.metrics.inc("transferred_nodes", self.n_solvers)
        else:
            root.lc_id = next(self._lc_ids)
            self._push_pool(root)
            self._assign(send, now)

    # -- pool helpers ----------------------------------------------------------

    def _push_pool(self, node: ParaNode, renumber: bool = False) -> None:
        if renumber or node.lc_id < 0:
            node.lc_id = next(self._lc_ids)
        heapq.heappush(self._pool, (node.dual_bound, next(self._pool_seq), node))

    def _incumbent_value(self) -> float | None:
        return None if self.incumbent is None else self.incumbent.value

    def pool_size(self) -> int:
        return len(self._pool)

    def _assign(self, send: SendFn, now: float) -> None:
        """Algorithm 1's inner while: feed idle solvers from the pool."""
        while self.idle and self._pool:
            _, _, node = heapq.heappop(self._pool)
            if (
                self.incumbent is not None
                and node.dual_bound >= self.incumbent.value - self.config.objective_epsilon
            ):
                self.tracer.emit(now, "prune", 0, lc_id=node.lc_id, dual=node.dual_bound)
                continue  # pruned by bound
            rank = min(self.idle)
            self.idle.discard(rank)
            node.origin_rank = rank
            self.active[rank] = node
            self._last_heartbeat[rank] = now
            self.tracer.emit(now, "assign", rank, lc_id=node.lc_id, dual=node.dual_bound)
            send(
                rank,
                MessageTag.SUBPROBLEM,
                {"node": node, "incumbent": self._incumbent_value(), "settings": self._solver_params(rank)},
            )
            self.metrics.inc("transferred_nodes")
        self._record_active(now)
        self._update_collecting(send)
        self._check_termination(send, now)

    def _solver_params(self, rank: int) -> ParamSet:
        # after racing, every solver continues with the winner's settings if
        # known; otherwise the base parameters with a per-rank permutation
        if self.stats.racing_winner is not None and self._racing_settings:
            return self._racing_settings[(self.stats.racing_winner - 1) % len(self._racing_settings)]
        return self.params.with_changes(permutation_seed=self.params.permutation_seed + rank)

    def _record_active(self, now: float) -> None:
        if self.metrics.maximize("max_active_solvers", len(self.active)):
            self.metrics.set("first_max_active_time", now)

    # -- collect mode (heavy-subproblem management) ------------------------------

    def _update_collecting(self, send: SendFn) -> None:
        if self._racing or self.finished:
            return
        # collecting only makes sense while idle solvers are starving
        if not self.idle:
            if self.collecting:
                self._stop_collecting(send)
            return
        want = len(self.idle) + self.config.pool_buffer
        high = int(want * self.config.pool_high_watermark_factor)
        if self.collecting and len(self._pool) >= max(high, 1):
            self._stop_collecting(send)
        elif not self.collecting and len(self._pool) < want and self.active:
            # pick the solvers believed to have the largest trees
            def open_count(rank: int) -> int:
                return int(self._last_status.get(rank, {}).get("n_open", 0))

            # never ask a leaving rank to collect — it is already winding down
            candidates = sorted(
                (r for r in self.active if r not in self.draining), key=lambda r: -open_count(r)
            )
            for rank in candidates[: self.config.max_collectors]:
                self.tracer.emit(self._trace_now, "collect_start", rank, pool=len(self._pool))
                self.metrics.inc("collect_toggles")
                send(rank, MessageTag.START_COLLECTING, None)
                self.collecting.add(rank)

    def _stop_collecting(self, send: SendFn) -> None:
        for rank in self.collecting:
            self.tracer.emit(self._trace_now, "collect_stop", rank, pool=len(self._pool))
            send(rank, MessageTag.STOP_COLLECTING, None)
        self.collecting.clear()

    # -- message handling ---------------------------------------------------------

    def handle_message(self, msg: Message, send: SendFn, now: float) -> None:
        tag = msg.tag
        payload = msg.payload or {}
        self._trace_now = now
        if msg.src != LOAD_COORDINATOR_RANK:
            if msg.src in self.dead:
                # a rank declared dead may still have messages in flight (or
                # be a false positive that kept computing): a late solution
                # is welcome, stale bookkeeping is not
                if tag not in ACCEPTED_FROM_DEAD_TAGS:
                    return
            else:
                # every worker message doubles as a heartbeat
                self._last_heartbeat[msg.src] = now
        if tag is MessageTag.SOLUTION_FOUND:
            self._on_solution(payload["solution"], send)
        elif tag is MessageTag.NODE_TRANSFER:
            # accepts both the classic single-node payload ({"node": ...})
            # and the coalesced form ({"nodes": [...]}) a batching solver
            # ships when net_batch_nodes > 1
            nodes: list[ParaNode] = payload.get("nodes") or (
                [payload["node"]] if payload.get("node") is not None else []
            )
            origin = int(payload.get("rank", msg.src))
            for node in nodes:
                node.origin_rank = origin
                if (
                    self.incumbent is None
                    or node.dual_bound < self.incumbent.value - self.config.objective_epsilon
                ):
                    self._push_pool(node)
            self._assign(send, now)
        elif tag is MessageTag.DRAINED:
            self._on_drained(payload, send, now)
        elif tag is MessageTag.STATUS:
            rank = payload["rank"]
            if rank not in self.active:
                # a stale or delayed STATUS from a rank that already left
                # the working set (terminated, racing loser, failed) must
                # not re-enter _last_status — it was popped on TERMINATED,
                # and a resurrected entry can spuriously trip
                # _maybe_finish_racing's open-node threshold
                self.tracer.emit(now, "stale_status", rank)
                return
            self._last_status[rank] = payload
            self._nodes_processed[rank] = payload.get("nodes_processed", 0)
            self._solver_dual[rank] = payload.get("dual_bound", -math.inf)
            if not self._root_reported and "first_step_work" in payload:
                self.metrics.set("root_time", payload["first_step_work"])
                self._root_reported = True
            if self._racing:
                self._maybe_finish_racing(send, now)
            else:
                self._update_collecting(send)
        elif tag is MessageTag.TERMINATED:
            rank = payload["rank"]
            if payload.get("failed"):
                # the ParaSolver contained a base-solver error: the solver
                # itself survives, but its subproblem must be re-explored
                if payload.get("numerical"):
                    # the kernel degraded (NUMERICAL_ERROR) rather than
                    # crashed: same containment, separate accounting
                    self.metrics.inc("numerical_failures")
                    self.tracer.emit(
                        now, "numerical_failure_contained", rank,
                        dual=payload.get("dual_bound", -math.inf),
                    )
                else:
                    self.metrics.inc("step_failures")
                    self.tracer.emit(now, "step_failure_contained", rank)
                if "nodes_processed" in payload:
                    self._nodes_processed[rank] = payload["nodes_processed"]
                self.collecting.discard(rank)
                self._last_status.pop(rank, None)
                self._solver_dual.pop(rank, None)
                if self._racing:
                    # a failed racer drops out like a loser; its root copy is
                    # still covered by the surviving racers
                    self.active.pop(rank, None)
                    self._terminated_racers.add(rank)
                    self.idle.add(rank)
                    if not [r for r in self.active if r not in self._terminated_racers]:
                        self._racing = False
                        self._forfeit_racing_root()
                        self._broadcast_termination(send, now)
                    return
                self._reclaim_active_node(rank)
                self.idle.add(rank)
                self._assign(send, now)
                return
            if payload.get("racing_loser"):
                self._terminated_racers.add(rank)
                self.idle.add(rank)
                self.active.pop(rank, None)
                self._assign(send, now)
                return
            self.active.pop(rank, None)
            self.idle.add(rank)
            self.collecting.discard(rank)
            self._last_status.pop(rank, None)
            self._solver_dual.pop(rank, None)
            if "nodes_processed" in payload:
                self._nodes_processed[rank] = payload["nodes_processed"]
            if self._racing:
                # a racer finished the whole instance during the race
                self.metrics.set("solved_in_racing", True)
                self._racing = False
                self.metrics.set("racing_winner", None)
                self.tracer.emit(now, "solved_in_racing", rank)
                self._broadcast_termination(send, now)
                return
            self._assign(send, now)
        else:  # pragma: no cover - protocol violation
            raise AssertionError(f"LoadCoordinator: unexpected tag {tag}")

    def _on_solution(self, sol: ParaSolution, send: SendFn) -> None:
        if not sol.improves(self.incumbent):
            return
        if math.isinf(self.stats.primal_initial):
            self.stats.primal_initial = sol.value
        self.incumbent = sol
        self.stats.primal_final = sol.value
        self.metrics.inc("solutions_accepted")
        self.tracer.emit(self._trace_now, "incumbent", 0, value=sol.value)
        # share the bound with every busy solver — debounced: improvements
        # landing inside net_incumbent_debounce of the last broadcast are
        # held, and only the best value flushes on a later tick.  Sound by
        # construction: a worker holding a stale bound merely prunes less
        # until the flush, and new assignments carry the live incumbent in
        # their SUBPROBLEM payload regardless
        debounce = self.config.net_incumbent_debounce
        if debounce <= 0 or self._trace_now - self._last_incumbent_broadcast >= debounce:
            self._broadcast_incumbent(send)
        else:
            self._pending_incumbent = True
            self.metrics.inc("incumbent_broadcasts_deferred")
        # prune the pool
        eps = self.config.objective_epsilon
        kept = [(b, s, n) for b, s, n in self._pool if n.dual_bound < sol.value - eps]
        if len(kept) != len(self._pool):
            self.tracer.emit(self._trace_now, "pool_prune", 0, removed=len(self._pool) - len(kept))
            self._pool = kept
            heapq.heapify(self._pool)

    def _broadcast_incumbent(self, send: SendFn) -> None:
        """Ship the current best value to every busy solver, now."""
        if self.incumbent is None:
            return
        for rank in self.active:
            send(rank, MessageTag.INCUMBENT, {"value": self.incumbent.value})
        self._last_incumbent_broadcast = self._trace_now
        self._pending_incumbent = False

    # -- racing -----------------------------------------------------------------

    def _maybe_finish_racing(self, send: SendFn, now: float) -> None:
        deadline_hit = now >= self.config.racing_deadline
        threshold_hit = any(
            st.get("n_open", 0) >= self.config.racing_open_node_threshold
            for st in self._last_status.values()
        )
        if not (deadline_hit or threshold_hit):
            return
        contenders = [
            r for r in self.active if r not in self._terminated_racers and r not in self.draining
        ]
        if not contenders:
            return
        # winner: best (highest) dual bound, more open nodes breaks ties
        def key(rank: int) -> tuple[float, int]:
            st = self._last_status.get(rank, {})
            return (st.get("dual_bound", -math.inf), st.get("n_open", 0))

        winner = max(contenders, key=key)
        self._racing = False
        self.metrics.set("racing_winner", self._settings_of_rank.get(winner))
        self.metrics.set("racing_time", now)
        winner_node = self.active[winner]
        self.tracer.emit(
            now,
            "racing_winner",
            winner,
            settings=self._settings_of_rank.get(winner),
            deadline_hit=deadline_hit,
            contenders=len(contenders),
        )
        send(winner, MessageTag.RACING_WINNER, None)
        self.collecting.add(winner)
        for rank in contenders:
            if rank != winner:
                self.tracer.emit(now, "racing_loser", rank)
                send(rank, MessageTag.RACING_LOSER, None)
                self.active.pop(rank, None)
        self.active = {winner: winner_node}
        self._record_active(now)

    # -- failure detection and recovery ------------------------------------------

    def live_solvers(self) -> set[int]:
        """Current members not declared dead (departed ranks left the set)."""
        return self.ranks - self.dead

    # -- elastic membership (repro.ug.cluster) ------------------------------------

    def next_rank_id(self) -> int:
        """A fresh rank id for a joiner; never reuses a past member's id."""
        return self._next_rank

    def note_rank_join(self, send: SendFn, now: float, rank: int | None = None) -> int:
        """Admit a new rank into the running solve.

        The engine has already wired the rank's channel; here it becomes a
        member: welcome packet (current incumbent + the settings a launch
        rank would use, e.g. the racing winner's ParamSet), then straight
        into the idle set so the next :meth:`_assign` can feed it.
        """
        if rank is None:
            rank = self._next_rank
        if rank in self.ranks or rank in self.departed:
            raise ValueError(f"rank {rank} was already a member of this run")
        if self.finished:
            return rank
        self._next_rank = max(self._next_rank, rank + 1)
        self._trace_now = now
        self.ranks.add(rank)
        self.idle.add(rank)
        self._last_heartbeat[rank] = now
        self.metrics.inc("ranks_joined")
        self.metrics.maximize("peak_ranks", len(self.live_solvers()))
        self.tracer.emit(now, "rank_join", rank, live=len(self.live_solvers()))
        send(
            rank,
            MessageTag.JOIN,
            {"incumbent": self._incumbent_value(), "settings": self._solver_params(rank)},
        )
        self._assign(send, now)
        return rank

    def request_drain(self, rank: int, send: SendFn, now: float) -> None:
        """Ask ``rank`` to leave gracefully (voluntary scale-down).

        The rank answers with DRAINED carrying its in-flight node, which
        re-enters the pool *without* burning a ``max_node_retries`` attempt
        — unlike a crash, nothing was lost.  A drain unanswered for
        ``config.drain_grace`` escalates onto the death/reclaim path.
        """
        if self.finished or rank in self.dead or rank in self.departed or rank in self.draining:
            return
        if rank not in self.ranks:
            return
        self._trace_now = now
        self.draining.add(rank)
        self._drain_requested[rank] = now
        # no new work for a leaving rank
        self.idle.discard(rank)
        self.collecting.discard(rank)
        self.metrics.inc("drains_requested")
        self.tracer.emit(now, "drain_request", rank, active=rank in self.active)
        send(rank, MessageTag.DRAIN, None)

    def _on_drained(self, payload: dict[str, Any], send: SendFn, now: float) -> None:
        """A rank confirmed its drain: requeue its node, retire the rank."""
        rank = payload["rank"]
        if rank in self.dead or rank in self.departed:
            return
        if "nodes_processed" in payload:
            self._nodes_processed[rank] = payload["nodes_processed"]
        was_contender = (
            self._racing and rank in self.active and rank not in self._terminated_racers
        )
        self.active.pop(rank, None)
        node = payload.get("node")
        requeued = False
        # racing roots are copies of the same subproblem — survivors still
        # cover the tree, so a draining racer's node is not requeued
        if node is not None and not self._racing:
            if (
                self.incumbent is None
                or node.dual_bound < self.incumbent.value - self.config.objective_epsilon
            ):
                node.origin_rank = rank
                self._push_pool(node, renumber=True)
                self.metrics.inc("nodes_returned")
                requeued = True
        self.ranks.discard(rank)
        self.departed.add(rank)
        self.draining.discard(rank)
        self._drain_requested.pop(rank, None)
        self.idle.discard(rank)
        self.collecting.discard(rank)
        self._last_status.pop(rank, None)
        self._solver_dual.pop(rank, None)
        self._last_heartbeat.pop(rank, None)
        self._terminated_racers.discard(rank)
        self.metrics.inc("ranks_drained")
        self.tracer.emit(now, "rank_drained", rank, requeued=requeued, live=len(self.live_solvers()))
        if not self.live_solvers():
            # the whole fleet left — nobody to feed; stop (honestly: a
            # non-empty pool keeps the run from claiming completeness)
            if self._racing:
                self._racing = False
                self._forfeit_racing_root()
            self._broadcast_termination(send, now)
            return
        if self._racing:
            if was_contender and not [
                r for r in self.active if r not in self._terminated_racers
            ]:
                self._racing = False
                self._forfeit_racing_root()
                self._broadcast_termination(send, now)
            return
        self._assign(send, now)

    def _check_drains(self, send: SendFn, now: float) -> None:
        """Escalate drains the rank never answered (crashed mid-drain?)."""
        if not self.draining or self.finished:
            return
        for rank in sorted(self.draining):
            if now - self._drain_requested.get(rank, now) > self.config.drain_grace:
                self.draining.discard(rank)
                self._drain_requested.pop(rank, None)
                self.metrics.inc("drain_timeouts")
                self.tracer.emit(now, "drain_timeout", rank)
                self._mark_dead(rank, send, now)
                if self.finished:
                    return

    def _forfeit_racing_root(self) -> None:
        """No contender will ever finish exploring the racing root.

        Unless a racer already solved the whole instance, completeness is
        gone: the root subproblem was never fully explored by any survivor,
        so the optimality claim and the global dual bound are surrendered.
        """
        if self.stats.solved_in_racing:
            return
        self._lost_subtrees = True
        self._lost_dual = min(self._lost_dual, self._racing_root_dual)

    def _reclaim_active_node(self, rank: int) -> None:
        """Pull ``rank``'s assigned node back into the pool (re-numbered)."""
        node = self.active.pop(rank, None)
        if node is None:
            return
        if (
            self.incumbent is not None
            and node.dual_bound >= self.incumbent.value - self.config.objective_epsilon
        ):
            return  # already pruned by bound — nothing was lost
        node.attempts += 1
        if node.attempts > self.config.max_node_retries:
            # a poisonous subproblem: stop retrying, surrender completeness
            self._lost_subtrees = True
            self._lost_dual = min(self._lost_dual, node.dual_bound)
            self.metrics.inc("nodes_abandoned")
            self.tracer.emit(self._trace_now, "abandon", rank, dual=node.dual_bound, attempts=node.attempts)
            return
        self._push_pool(node, renumber=True)
        self.metrics.inc("nodes_reclaimed")
        self.tracer.emit(self._trace_now, "reclaim", rank, lc_id=node.lc_id, attempts=node.attempts)

    def _mark_dead(self, rank: int, send: SendFn, now: float) -> None:
        """Declare ``rank`` lost, reclaim its work, keep the run going."""
        if rank in self.dead:
            return
        self.dead.add(rank)
        self.metrics.inc("solver_failures")
        self.tracer.emit(now, "solver_dead", rank, racing=self._racing)
        was_racing = self._racing
        if was_racing:
            # racing roots are copies of the same subproblem — the surviving
            # racers still cover the whole tree, so nothing is reclaimed
            self.active.pop(rank, None)
        else:
            self._reclaim_active_node(rank)
        self.idle.discard(rank)
        self.collecting.discard(rank)
        self.draining.discard(rank)
        self._drain_requested.pop(rank, None)
        self._last_status.pop(rank, None)
        self._solver_dual.pop(rank, None)
        self._last_heartbeat.pop(rank, None)
        self._terminated_racers.discard(rank)
        if not self.live_solvers():
            # every solver is gone — nobody left to feed; stop gracefully
            if was_racing:
                self._forfeit_racing_root()
            self._broadcast_termination(send, now)
            return
        if was_racing:
            # a dead racer leaves the contest; the race goes on among the
            # survivors (and ends immediately if none remain racing)
            contenders = [r for r in self.active if r not in self._terminated_racers]
            if not contenders:
                self._racing = False
                self._forfeit_racing_root()
                self._broadcast_termination(send, now)
            return
        self._assign(send, now)

    def note_rank_death(self, rank: int, send: SendFn, now: float, reason: str = "unknown") -> None:
        """Engine-observed death (process exit, closed pipe, kill signal).

        The distributed engines see failures the heartbeat cannot: a child
        process exiting, a pipe EOF.  They funnel those observations here,
        onto the same reclaim/continue path as a heartbeat timeout, so
        both detection mechanisms share one recovery story.
        """
        if rank in self.dead or self.finished:
            return
        if rank not in self.ranks:
            # a departed rank's connection closing is the tail end of a
            # graceful drain, not a death — nothing to reclaim
            return
        self._trace_now = now
        self.tracer.emit(now, "rank_death_observed", rank, reason=reason)
        self._mark_dead(rank, send, now)

    def nodes_processed_total(self) -> int:
        """Processed B&B nodes summed over every rank's last report."""
        return sum(self._nodes_processed.values())

    def _check_heartbeats(self, send: SendFn, now: float) -> None:
        timeout = self.config.heartbeat_timeout
        if math.isinf(timeout) or self.finished:
            return
        # watch every live rank expected to speak again: active workers,
        # and ranks winding down (e.g. a racing loser that has yet to
        # confirm TERMINATED).  Idle ranks are silent by design.
        for rank in sorted(self.live_solvers() - self.idle):
            last = self._last_heartbeat.get(rank, now)
            if now - last > timeout:
                self._mark_dead(rank, send, now)
                if self.finished:
                    return

    # -- ticks: deadline, checkpoints, limits ------------------------------------

    def on_tick(self, send: SendFn, now: float) -> None:
        """Called by the engine after every event."""
        if self.finished:
            return
        self._trace_now = now
        self._check_heartbeats(send, now)
        if self.finished:
            return
        self._check_drains(send, now)
        if self.finished:
            return
        if (
            self._pending_incumbent
            and now - self._last_incumbent_broadcast >= self.config.net_incumbent_debounce
        ):
            self._broadcast_incumbent(send)
        if self._racing and now >= self.config.racing_deadline:
            self._maybe_finish_racing(send, now)
        if (
            self.config.checkpoint_path is not None
            and now - self._last_checkpoint >= self.config.checkpoint_interval
        ):
            self.write_checkpoint(self.config.checkpoint_path, now)
            self._last_checkpoint = now

    def interrupt(self, send: SendFn, now: float) -> None:
        """Stop the run (time/node limit): terminate everyone, keep state."""
        if not self.finished:
            self._trace_now = now
            self.tracer.emit(now, "interrupt", 0)
            if self.config.checkpoint_path is not None:
                self.write_checkpoint(self.config.checkpoint_path, now)
            self._broadcast_termination(send, now)

    def _broadcast_termination(self, send: SendFn, now: float) -> None:
        self.finished = True
        self.tracer.emit(now, "terminate", 0, pool=len(self._pool), active=len(self.active))
        for rank in sorted(self.ranks):
            send(rank, MessageTag.TERMINATION, None)
        self._finalize_stats(now)

    def _check_termination(self, send: SendFn, now: float) -> None:
        if not self._racing and not self.finished and not self._pool and not self.active:
            self._broadcast_termination(send, now)

    def _finalize_stats(self, now: float) -> None:
        s = self.stats
        m = self.metrics
        m.set("computing_time", now)
        if self.incumbent is not None:
            s.primal_final = self.incumbent.value
        s.dual_final = self.global_dual_bound()
        proven = (
            (not self.active and not self._pool) or s.solved_in_racing
        ) and not self._lost_subtrees
        if proven and self.incumbent is not None and not math.isinf(s.primal_final):
            s.dual_final = s.primal_final  # proven optimal
        m.set(
            "open_nodes_final",
            len(self._pool)
            + sum(int(self._last_status.get(r, {}).get("n_open", 0)) for r in self.active),
        )
        m.set("nodes_generated", sum(self._nodes_processed.values()))
        m.set("final_ranks", len(self.live_solvers()))

    @property
    def proven_complete(self) -> bool:
        """False when a subproblem had to be abandoned (no optimality claim)."""
        return not self._lost_subtrees

    def global_dual_bound(self) -> float:
        bounds = [n.dual_bound for _, _, n in self._pool]
        for rank, node in self.active.items():
            bounds.append(self._solver_dual.get(rank, node.dual_bound))
        if self._lost_dual < math.inf:
            # an abandoned subtree may hide solutions down to its bound
            bounds.append(self._lost_dual)
        if not bounds:
            return self.incumbent.value if self.incumbent is not None else -math.inf
        return min(bounds)

    # -- checkpointing ------------------------------------------------------------

    def primitive_nodes(self) -> list[ParaNode]:
        """The minimal covering set saved at checkpoints.

        Active assignment seeds cover their solvers' whole subtrees; a
        pooled node is *primitive* iff none of its lineage ancestors is an
        active seed (otherwise regenerating the seed re-creates it).
        """
        saved: list[ParaNode] = [node for node in self.active.values()]
        active_ids = {node.lc_id for node in self.active.values()}
        for _, _, node in self._pool:
            if not any(anc in active_ids for anc in node.lineage):
                saved.append(node)
        return saved

    def write_checkpoint(self, path: str, now: float | None = None) -> None:
        meta = {
            # virtual seconds (Sim) / engine-relative wall seconds (Thread)
            "checkpoint_time": now if now is not None else 0.0,
            "wall_time": time.time(),
            "incumbent_value": self._incumbent_value(),
            "dual_bound": self.global_dual_bound(),
            "solvers_alive": len(self.live_solvers()),
            # rank-count provenance: lets a restart know the checkpoint's
            # cluster shape (and repro.verify flag shape-changing restores)
            "n_ranks": len(self.live_solvers()),
        }
        nodes = self.primitive_nodes()
        with self.metrics.timer("checkpoint_write_seconds").time():
            save_checkpoint(
                path,
                nodes,
                self.incumbent,
                self.stats,
                meta=meta,
                retain=self.config.checkpoint_retain,
            )
        self.metrics.inc("checkpoints_written")
        self.tracer.emit(self._trace_now, "checkpoint", 0, nodes=len(nodes))
        if self.fault_injector is not None:
            self.fault_injector.after_checkpoint_write(path)
