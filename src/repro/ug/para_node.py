"""Solver-independent subproblem descriptions.

A :class:`ParaNode` is what travels between ParaSolvers: an
application-defined JSON-safe ``payload`` (e.g. Steiner vertex decisions
plus arc fixings, or MISDP bound changes) plus bookkeeping the
LoadCoordinator needs — the dual bound for ordering/pruning and the
``lineage`` of LoadCoordinator node ids used to identify *primitive*
nodes at checkpoint time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ParaNode:
    """A subproblem in solver-independent form."""

    payload: dict[str, Any]
    dual_bound: float = float("-inf")
    depth: int = 0
    lc_id: int = -1  # assigned by the LoadCoordinator on receipt
    lineage: tuple[int, ...] = field(default_factory=tuple)
    attempts: int = 0  # times this node was assigned and reclaimed after a failure
    # rank that last held/produced the node (0 = LoadCoordinator); recorded
    # in checkpoints so a shape-changing restart can audit per-rank
    # provenance of the saved frontier
    origin_rank: int = 0

    def to_json(self) -> dict[str, Any]:
        return {
            "payload": self.payload,
            "dual_bound": self.dual_bound,
            "depth": self.depth,
            "lc_id": self.lc_id,
            "lineage": list(self.lineage),
            "attempts": self.attempts,
            "origin_rank": self.origin_rank,
        }

    @staticmethod
    def from_json(obj: dict[str, Any]) -> "ParaNode":
        return ParaNode(
            payload=dict(obj["payload"]),
            dual_bound=float(obj["dual_bound"]),
            depth=int(obj["depth"]),
            lc_id=int(obj["lc_id"]),
            lineage=tuple(int(x) for x in obj.get("lineage", ())),
            attempts=int(obj.get("attempts", 0)),
            origin_rank=int(obj.get("origin_rank", 0)),
        )
