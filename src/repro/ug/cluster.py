"""Elastic cluster runtime: membership as a *runtime* property.

The paper's ug[*, MPI] campaigns launch with a fixed rank count and keep
it until the job dies.  This module makes the fleet elastic on top of
the distributed-memory engine (``repro.ug.net``):

* :class:`ClusterPlan` / :class:`ClusterEvent` — a deterministic schedule
  of membership changes (rank joins and voluntary drains) executed by the
  elastic engines, exactly like a :class:`~repro.ug.faults.FaultPlan` but
  for growth and graceful scale-down.  Times are wall seconds under the
  :class:`ClusterSupervisor` and virtual seconds under the loopback twin.
* :class:`RestartPolicy` / :class:`RankWatchdog` — per-rank supervision:
  a dead rank is replaced by a *fresh* rank id after a capped, jittered
  exponential backoff (deterministic under an injected clock), up to
  ``max_restarts`` per rank lineage.  A restart composes the existing
  death path (reclaim via ``note_rank_death``) with the join path, so
  transient worker deaths heal instead of just shrinking the fleet.
* :class:`ClusterSupervisor` — a :class:`ProcessEngine` whose TCP
  listener stays open for the whole run: late joiners spawn, dial back
  with the same rank+token hello (compared timing-safely), and are
  admitted mid-solve with the presolved instance, current incumbent and
  ParamSet shipped in the JOIN welcome packet.  DRAIN asks a rank to hand
  back its in-flight :class:`~repro.ug.para_node.ParaNode` and leave —
  graceful scale-down never burns the ``max_node_retries`` budget.
"""

from __future__ import annotations

import heapq
import queue
import threading
from dataclasses import dataclass
from typing import Any

from repro.obs.trace import Tracer
from repro.ug.config import UGConfig
from repro.ug.load_coordinator import LoadCoordinator
from repro.ug.net.process_engine import ProcessEngine
from repro.ug.net.transport import (
    DEFAULT_BACKOFF_CAP,
    TcpTransport,
    backoff_delay,
    hello_token_matches,
    recv_hello,
)
from repro.ug.para_solver import ParaSolver

# -- watchdog policy --------------------------------------------------------------


@dataclass(frozen=True)
class RestartPolicy:
    """How hard the watchdog tries to replace a dead rank.

    ``max_restarts`` counts per rank *lineage*: a replacement inherits the
    budget of the rank it replaced, so one flapping worker cannot respawn
    forever by being renamed.  Delays come from the shared
    :func:`~repro.ug.net.transport.backoff_delay` (capped exponential with
    deterministic seeded jitter), so virtual-time engines replay
    bit-identically.
    """

    max_restarts: int = 2
    backoff: float = 0.05
    backoff_cap: float = DEFAULT_BACKOFF_CAP
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError(f"RestartPolicy.max_restarts must be >= 0, got {self.max_restarts!r}")
        if not self.backoff > 0:
            raise ValueError(f"RestartPolicy.backoff must be positive, got {self.backoff!r}")
        if self.backoff_cap < self.backoff:
            raise ValueError(
                f"RestartPolicy.backoff_cap ({self.backoff_cap!r}) must be >= backoff ({self.backoff!r})"
            )


class RankWatchdog:
    """Per-rank restart scheduler, deterministic under an injected clock.

    ``note_death(rank)`` books a replacement join at ``now + backoff``;
    the engine polls :meth:`due` each tick and spawns a fresh-id rank for
    every fired entry, then calls :meth:`bind` so the replacement inherits
    the dead rank's lineage (and with it the remaining restart budget).
    """

    def __init__(self, policy: RestartPolicy, clock: Any) -> None:
        self.policy = policy
        self.clock = clock
        self._root_of: dict[int, int] = {}  # replacement rank -> lineage root
        self._attempts: dict[int, int] = {}  # lineage root -> restarts used
        self._pending: list[tuple[float, int]] = []  # (due time, lineage root)
        self.gave_up: set[int] = set()  # lineages past max_restarts

    def lineage_of(self, rank: int) -> int:
        return self._root_of.get(rank, rank)

    def restarts_used(self, rank: int) -> int:
        return self._attempts.get(self.lineage_of(rank), 0)

    def note_death(self, rank: int, now: float | None = None) -> float | None:
        """Schedule a replacement; returns its due time, or None when the
        lineage exhausted its restart budget."""
        now = self.clock() if now is None else now
        root = self.lineage_of(rank)
        attempt = self._attempts.get(root, 0) + 1
        if attempt > self.policy.max_restarts:
            self.gave_up.add(root)
            return None
        self._attempts[root] = attempt
        due = now + backoff_delay(
            self.policy.backoff,
            attempt,
            cap=self.policy.backoff_cap,
            seed=self.policy.seed * 1_000_003 + root,
        )
        heapq.heappush(self._pending, (due, root))
        return due

    def due(self, now: float | None = None) -> list[int]:
        """Lineage roots whose replacement join is due."""
        now = self.clock() if now is None else now
        fired: list[int] = []
        while self._pending and self._pending[0][0] <= now:
            fired.append(heapq.heappop(self._pending)[1])
        return fired

    def bind(self, replacement_rank: int, root: int) -> None:
        self._root_of[replacement_rank] = root


# -- scripted membership ----------------------------------------------------------


@dataclass(frozen=True)
class ClusterEvent:
    """One scheduled membership change.

    ``action`` is ``"join"`` (admit a fresh rank; ``rank`` may pin the id,
    None lets the LoadCoordinator assign the next fresh one) or
    ``"drain"`` (gracefully remove ``rank``; None picks the highest live
    rank — "scale down from the top").
    """

    at_time: float
    action: str
    rank: int | None = None

    def __post_init__(self) -> None:
        if self.action not in ("join", "drain"):
            raise ValueError(f"ClusterEvent.action must be 'join' or 'drain', got {self.action!r}")
        if not self.at_time >= 0:
            raise ValueError(f"ClusterEvent.at_time must be >= 0, got {self.at_time!r}")


@dataclass(frozen=True)
class ClusterPlan:
    """Deterministic membership schedule + optional watchdog policy."""

    events: tuple[ClusterEvent, ...] = ()
    restart_policy: RestartPolicy | None = None

    def sorted_events(self) -> list[ClusterEvent]:
        return sorted(self.events, key=lambda e: e.at_time)


# -- the elastic process engine ---------------------------------------------------


class ClusterSupervisor(ProcessEngine):
    """ProcessEngine with runtime rank join/leave and a restart watchdog.

    Membership changes ride the engine's main loop (``_membership_tick``):
    scripted :class:`ClusterPlan` events fire by wall time, watchdog
    replacements fire when their backoff expires, and TCP joiners that
    dialed in are admitted.  Everything that mutates channels runs on the
    main thread — the accept thread only authenticates sockets and queues
    them.
    """

    def __init__(
        self,
        lc: LoadCoordinator,
        solvers: dict[int, ParaSolver],
        config: UGConfig,
        tracer: Tracer | None = None,
    ) -> None:
        super().__init__(lc, solvers, config, tracer)
        plan = config.cluster_plan or ClusterPlan()
        self._events = plan.sorted_events()
        self.watchdog = (
            RankWatchdog(plan.restart_policy, clock=self._now)
            if plan.restart_policy is not None
            else None
        )
        self._death_seen: set[int] = set()
        # TCP joiners: spawned ranks whose dial-in we still await, and the
        # authenticated sockets the accept thread hands to the main loop
        self._expected_joiners: set[int] = set()
        self._admitted: queue.Queue[tuple[int, Any]] = queue.Queue()
        self._accept_thread: threading.Thread | None = None
        self._stop_accept = threading.Event()
        self._next_rank = max(solvers, default=0) + 1

    # -- join plumbing -----------------------------------------------------------

    def _close_listener(self) -> None:
        # keep the listener open: late joiners dial the same address with
        # the same run token; a persistent accept thread admits them
        if self._listener is None:
            return
        self._accept_thread = threading.Thread(
            target=self._accept_joiners, daemon=True, name="ClusterSupervisor-accept"
        )
        self._accept_thread.start()

    def _accept_joiners(self) -> None:
        listener = self._listener
        listener.settimeout(0.2)
        while not self._stop_accept.is_set():
            try:
                sock, _addr = listener.accept()
            except OSError:
                continue
            hello = recv_hello(sock, self.config.net_connect_timeout)
            if hello is None:
                sock.close()
                continue
            rank, got_token = hello
            if not hello_token_matches(got_token, self._token) or rank not in self._expected_joiners:
                sock.close()  # stranger, replay, or unexpected rank
                continue
            self._expected_joiners.discard(rank)
            sock.settimeout(None)
            self._admitted.put((rank, sock))

    def _fresh_rank(self) -> int:
        # joins may be in flight (spawned, not yet admitted), so the
        # engine tracks its own high-water mark alongside the LC's
        rank = max(self._next_rank, self.lc.next_rank_id())
        self._next_rank = rank + 1
        return rank

    def _start_join(self, send: Any, rank: int | None = None) -> int | None:
        """Spawn a joiner process; membership completes immediately in
        pipe mode, at dial-in admission in TCP mode."""
        lc = self.lc
        if lc.finished:
            return None
        if rank is None:
            rank = self._fresh_rank()
        if rank in self.procs:
            return None
        self._next_rank = max(self._next_rank, rank + 1)
        if self._mode == "tcp":
            self._expected_joiners.add(rank)
        self._spawn_rank(rank)
        if self._mode == "pipe":
            lc.note_rank_join(send, self._now(), rank=rank)
        return rank

    # -- the elastic tick --------------------------------------------------------

    def _membership_tick(self, send: Any) -> None:
        lc = self.lc
        now = self._now()
        # admit authenticated TCP joiners (channel wiring on this thread)
        while True:
            try:
                rank, sock = self._admitted.get_nowait()
            except queue.Empty:
                break
            transport = TcpTransport(sock, max_outbound=self.config.net_outbound_queue)
            self.channels[rank] = self._make_channel(rank, transport, self._lc_stamper)
            lc.note_rank_join(send, now, rank=rank)
            if lc.finished:
                return
        # feed every newly observed death (engine- or heartbeat-detected)
        # to the watchdog so a replacement gets booked
        for rank in sorted(lc.dead - self._death_seen):
            self._death_seen.add(rank)
            if self.watchdog is not None:
                self.watchdog.note_death(rank, now)
        # scripted joins/drains whose time has come
        while self._events and self._events[0].at_time <= now:
            ev = self._events.pop(0)
            if lc.finished:
                return
            if ev.action == "join":
                self._start_join(send, ev.rank)
            else:
                target = ev.rank
                if target is None:
                    candidates = lc.live_solvers() - lc.draining
                    target = max(candidates) if candidates else None
                if target is not None:
                    lc.request_drain(target, send, now)
        # watchdog replacements whose backoff expired
        if self.watchdog is not None:
            for root in self.watchdog.due(now):
                if lc.finished:
                    return
                rank = self._start_join(send, None)
                if rank is not None:
                    lc.metrics.inc("ranks_restarted")
                    self.watchdog.bind(rank, root)
                    self.tracer.emit(now, "rank_restart", rank, root=root)

    # -- teardown ----------------------------------------------------------------

    def _shutdown(self) -> None:
        self._stop_accept.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        super()._shutdown()
