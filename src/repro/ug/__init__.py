"""UG — Ubiquity Generator framework analogue.

A generic parallelization layer for branch-and-bound *base solvers*,
implementing the Supervisor–Worker scheme of the paper's Algorithms 1–2:

* the :class:`~repro.ug.load_coordinator.LoadCoordinator` keeps a small
  pool of solver-independent subproblems (:class:`~repro.ug.para_node.ParaNode`)
  extracted from the solvers for load balancing, while the B&B trees stay
  inside the :class:`~repro.ug.para_solver.ParaSolver` workers;
* ramp-up is *normal* (grow from one solver) or *racing* (all solvers
  attack the root under different parameter settings; a winner is chosen
  and its open nodes are redistributed), including customized racing with
  application-supplied setting lists;
* *layered presolving*: the instance is presolved once at the
  LoadCoordinator and every received subproblem is presolved again inside
  its ParaSolver;
* checkpointing stores only *primitive* nodes (no ancestor in the LC) and
  restarting re-applies global presolve; checkpoint files are checksummed,
  fsynced and rotated so a crash mid-write falls back to a ``.bak`` copy;
* fault tolerance: worker messages double as heartbeats, dead solvers are
  detected and their subproblems reclaimed (graceful degradation), and a
  deterministic :class:`~repro.ug.faults.FaultPlan` can replay crash /
  message-loss / corruption scenarios bit-identically under the SimEngine.

Four interchangeable run-time engines drive the same coordinator/solver
state machines: :class:`~repro.ug.engines.SimEngine` (deterministic
virtual-time discrete-event simulation — the MPI/supercomputer analogue,
see DESIGN.md §4 for the substitution argument),
:class:`~repro.ug.engines.ThreadEngine` (real Python threads — the
Pthreads/C++11 analogue), and the distributed-memory pair from
:mod:`repro.ug.net` (DESIGN.md §5e):
:class:`~repro.ug.net.process_engine.ProcessEngine` (one OS process per
rank over the binary wire codec — true parallelism) with its
deterministic loopback twin
:class:`~repro.ug.net.loopback_engine.LoopbackNetEngine`.

Naming follows the paper: an instantiated solver is
``ug[<base solver>, <library>]``, e.g. ``ug[SteinerJack, SimMPI]`` or
``ug[SteinerJack, MPI]`` (the ProcessEngine).
"""

from typing import Any

from repro.ug.para_node import ParaNode
from repro.ug.para_solution import ParaSolution
from repro.ug.messages import Message, MessageTag, SeqStamper
from repro.ug.user_plugins import SolverHandle, HandleStep, UserPlugins
from repro.ug.instantiation import UGSolver, UGResult, ug
from repro.ug.statistics import UGStatistics
from repro.ug.faults import (
    CheckpointFault,
    FaultInjector,
    FaultPlan,
    FrameFault,
    MessageFault,
    SendFault,
    SolverCrash,
)

__all__ = [
    "ParaNode",
    "ParaSolution",
    "Message",
    "MessageTag",
    "SeqStamper",
    "SolverHandle",
    "HandleStep",
    "UserPlugins",
    "UGSolver",
    "UGResult",
    "ug",
    "UGStatistics",
    "FaultPlan",
    "FaultInjector",
    "SolverCrash",
    "MessageFault",
    "CheckpointFault",
    "SendFault",
    "FrameFault",
    "ClusterEvent",
    "ClusterPlan",
    "ClusterSupervisor",
    "RankWatchdog",
    "RestartPolicy",
]

# the elastic cluster runtime pulls in the process engine (multiprocessing
# machinery) — exported lazily like the engines in repro.ug.net
_LAZY = {
    "ClusterEvent": "repro.ug.cluster",
    "ClusterPlan": "repro.ug.cluster",
    "ClusterSupervisor": "repro.ug.cluster",
    "RankWatchdog": "repro.ug.cluster",
    "RestartPolicy": "repro.ug.cluster",
}


def __getattr__(name: str) -> Any:
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), name)
