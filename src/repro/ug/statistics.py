"""Run statistics — the quantities reported in the paper's tables.

The dataclass is a passive snapshot: all incremental updates flow
through the LoadCoordinator's :class:`~repro.obs.metrics.MetricsRegistry`,
which mirrors every change onto the matching attribute here, so the
object stays live for mid-run readers (checkpoints serialize it) while
the registry owns the mutation pathway.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field


@dataclass
class UGStatistics:
    """Everything Tables 1-3 report for a ug[...] run.

    Times are virtual seconds under the SimEngine and wall-clock seconds
    under the ThreadEngine.
    """

    n_solvers: int = 0
    computing_time: float = 0.0
    racing_time: float | None = None
    root_time: float = 0.0  # time spent at the root of the B&B tree
    idle_ratio: float = 0.0  # fraction of solver-time spent without a subproblem
    transferred_nodes: int = 0  # subproblems sent to ParaSolvers
    nodes_generated: int = 0  # B&B nodes processed across all solvers
    open_nodes_final: int = 0
    primal_initial: float = math.inf
    primal_final: float = math.inf
    dual_initial: float = -math.inf
    dual_final: float = -math.inf
    max_active_solvers: int = 0
    first_max_active_time: float = 0.0
    racing_winner: int | None = None  # settings index of the racing winner
    solved_in_racing: bool = False
    checkpoints_written: int = 0
    solver_busy: dict[int, float] = field(default_factory=dict)

    # fault tolerance (the restart-series campaigns of Tables 2-3)
    solver_failures: int = 0  # ranks declared dead by heartbeat timeout
    step_failures: int = 0  # base-solver step errors contained by a ParaSolver
    numerical_failures: int = 0  # kernel NUMERICAL_ERROR degradations contained
    nodes_reclaimed: int = 0  # active ParaNodes recovered from failed solvers
    checkpoints_recovered: int = 0  # restarts served from a .bak fallback
    messages_dropped: int = 0  # injected message losses observed
    messages_delayed: int = 0  # injected message delays observed
    send_retries: int = 0  # transient CommErrors absorbed by the retry wrapper
    faults_injected: int = 0  # total FaultPlan events that fired

    # elastic membership (repro.ug.cluster): runtime joins/drains/restarts
    ranks_joined: int = 0  # ranks admitted after launch
    drains_requested: int = 0  # DRAIN messages sent to ranks
    ranks_drained: int = 0  # ranks that left gracefully (DRAINED received)
    drain_timeouts: int = 0  # drains escalated onto the death path
    ranks_restarted: int = 0  # watchdog replacements for dead ranks
    nodes_returned: int = 0  # in-flight nodes handed back by graceful drains
    peak_ranks: int = 0  # most ranks simultaneously alive
    final_ranks: int = 0  # live ranks when the run ended
    shape_restarts: int = 0  # restarts onto a different rank count than saved

    # wire traffic (codec-backed paths: ThreadEngine delivery, loopback
    # and process engines; the SimEngine has no wire so these stay 0)
    net_frames_sent: int = 0
    net_frames_received: int = 0
    net_bytes_sent: int = 0
    net_bytes_received: int = 0
    net_decode_errors: int = 0  # malformed frames rejected by the codec
    net_queue_peak: int = 0  # high-water mark of a bounded outbound queue
    # observability: events evicted by the trace ring buffer during the
    # run (Tracer.dropped at the end of the run).  Non-zero voids the
    # trace-replay audits — repro.verify refuses to certify from a
    # partial stream — and flags that trace_capacity was too small
    trace_events_dropped: int = 0
    net_batches_sent: int = 0  # coalesced BATCH frames shipped
    net_msgs_coalesced: int = 0  # messages that rode inside BATCH frames
    incumbent_broadcasts_deferred: int = 0  # improvements held by the debounce
    warm_pool_reuses: int = 0  # ranks served by a pooled worker instead of a spawn

    @property
    def surviving_solvers(self) -> int:
        """Solvers still alive at the end of the run (graceful degradation)."""
        return max(self.n_solvers - self.solver_failures, 0)

    @property
    def gap_initial(self) -> float:
        return _gap(self.primal_initial, self.dual_initial)

    @property
    def gap_final(self) -> float:
        return _gap(self.primal_final, self.dual_final)

    def as_dict(self) -> dict:
        """JSON-ready snapshot including the derived quantities."""
        d = asdict(self)
        d["solver_busy"] = {str(k): v for k, v in self.solver_busy.items()}
        d["gap_initial"] = self.gap_initial
        d["gap_final"] = self.gap_final
        d["surviving_solvers"] = self.surviving_solvers
        return d


def _gap(primal: float, dual: float) -> float:
    if math.isinf(primal) or math.isinf(dual):
        return math.inf
    if primal * dual < 0:
        # SCIP convention: bounds on opposite sides of zero give an
        # infinite gap — |p - d| / max(|p|, |d|) would report a bogus
        # finite value (e.g. primal +5 / dual -5 -> "100%")
        return math.inf
    return abs(primal - dual) / max(abs(primal), abs(dual), 1.0)
