"""Run-time engines driving the LoadCoordinator/ParaSolver state machines.

Both engines execute the *same* protocol code:

* :class:`SimEngine` — deterministic discrete-event simulation over a
  virtual clock. Each ParaSolver advances by its base solver's reported
  work units; messages take ``latency`` virtual seconds. This is the
  substitute for MPI runs on supercomputers (DESIGN.md §4): speedups,
  idle ratios and ramp-up dynamics are properties of the coordination
  algorithm which the simulation reproduces bit-identically at any
  simulated scale.
* :class:`ThreadEngine` — real Python threads with queues (the
  Pthreads/C++11 analogue): proves the protocol is genuinely concurrent
  and delivers modest real-time speedups where the GIL allows.

Both engines consult a :class:`~repro.ug.faults.FaultInjector` built from
``config.fault_plan``: a crashed rank becomes a black hole (its messages
are swallowed, it never speaks again — exactly a lost MPI process),
injected message faults drop or delay deliveries, and transient send
failures are absorbed by the bounded retry wrapper.  Under the SimEngine
the whole failure scenario replays bit-identically.
"""

from __future__ import annotations

import heapq
import itertools
import queue
import threading
import time
from typing import Any, Callable

from repro.exceptions import CommError
from repro.obs.trace import Tracer
from repro.ug.config import UGConfig
from repro.ug.faults import FaultInjector, make_retrying_send
from repro.ug.load_coordinator import LoadCoordinator
from repro.ug.messages import LOAD_COORDINATOR_RANK, Message, MessageTag, SeqStamper
from repro.ug.net.channel import attach_run_tracer, corrupt_frame
from repro.ug.net.codec import FrameDecodeError, decode_message, encode_message
from repro.ug.para_solver import ParaSolver


class SimEngine:
    """Deterministic virtual-time engine."""

    def __init__(
        self,
        lc: LoadCoordinator,
        solvers: dict[int, ParaSolver],
        config: UGConfig,
        max_events: int = 5_000_000,
        wall_clock_limit: float = float("inf"),
        tracer: Tracer | None = None,
    ) -> None:
        self.lc = lc
        self.solvers = solvers
        self.config = config
        self.max_events = max_events
        self.wall_clock_limit = wall_clock_limit
        self.injector = FaultInjector(config.fault_plan)
        lc.fault_injector = self.injector
        self.tracer = attach_run_tracer(tracer, config, lc, solvers)
        self._events: list[tuple[float, int, str, int, Message | None]] = []
        self._seq = itertools.count()
        # per-run message sequence numbers: (src, seq) identifies a message
        # within this engine run, independent of any other run in the process
        self._msg_seq = SeqStamper()
        self._clock: dict[int, float] = {r: 0.0 for r in solvers}
        self._busy: dict[int, float] = {r: 0.0 for r in solvers}
        self._wake_scheduled: set[int] = set()
        self._inbox: dict[int, list[Message]] = {r: [] for r in solvers}
        self.now = 0.0
        self.virtual_time = 0.0
        # running total of processed B&B nodes across all solvers, kept
        # current by _run_solver — the node-limit check runs on every
        # event and must not re-sum every solver each time
        self._nodes_total = 0

    # -- event plumbing --------------------------------------------------------

    def _push(self, t: float, kind: str, rank: int, msg: Message | None = None) -> None:
        heapq.heappush(self._events, (t, next(self._seq), kind, rank, msg))

    def _send_factory(self, src: int, when: Callable[[], float]):
        def send(dst: int, tag: MessageTag, payload: Any) -> None:
            self.injector.check_send(src)  # may raise a transient CommError
            msg = Message(tag=tag, src=src, dst=dst, payload=payload, seq=self._msg_seq())
            action, extra_delay = self.injector.message_action(msg)
            tracer = self.tracer
            if action == "drop":
                if tracer.enabled:
                    tracer.emit(when(), "send", src, dst=dst, tag=tag.value, action="drop")
                return
            t = when() + self.config.latency + extra_delay
            if dst == LOAD_COORDINATOR_RANK:
                if tracer.enabled:
                    tracer.emit(when(), "send", src, dst=dst, tag=tag.value, action=action, delay=extra_delay)
                self._push(t, "lcmsg", dst, msg)
            else:
                if dst not in self.solvers:
                    raise CommError(f"unknown rank {dst}")
                if self.injector.is_crashed(dst):
                    # a dead rank is a black hole
                    if tracer.enabled:
                        tracer.emit(when(), "send", src, dst=dst, tag=tag.value, action="blackhole")
                    return
                if tracer.enabled:
                    tracer.emit(when(), "send", src, dst=dst, tag=tag.value, action=action, delay=extra_delay)
                self._push(t, "smsg", dst, msg)

        return make_retrying_send(send, self.config, self.injector, real_time=False)

    # -- main loop ------------------------------------------------------------------

    def run(self) -> None:
        lc_send_time = [0.0]
        lc_send = self._send_factory(LOAD_COORDINATOR_RANK, lambda: lc_send_time[0])
        self.lc.start(lc_send, 0.0)
        self._schedule_heartbeat_tick(0.0)
        start_wall = time.perf_counter()
        events_done = 0
        interrupted = False
        tracer = self.tracer
        while self._events:
            t, _, kind, rank, msg = heapq.heappop(self._events)
            self.now = t
            self.virtual_time = max(self.virtual_time, t)
            events_done += 1
            if events_done > self.max_events:
                raise CommError("SimEngine exceeded max_events — protocol livelock?")

            over_time = t >= self.config.time_limit
            over_nodes = self._nodes_total >= self.config.node_limit
            over_wall = time.perf_counter() - start_wall >= self.wall_clock_limit
            if not interrupted and not self.lc.finished and (over_time or over_nodes or over_wall):
                interrupted = True
                lc_send_time[0] = t
                self.lc.interrupt(lc_send, t)

            if kind == "lcmsg":
                assert msg is not None
                lc_send_time[0] = t
                if tracer.enabled:
                    tracer.emit(t, "deliver", LOAD_COORDINATOR_RANK, src=msg.src, tag=msg.tag.value)
                if not self.lc.finished:
                    self.lc.handle_message(msg, lc_send, t)
                    self.lc.on_tick(lc_send, t)
            elif kind == "tick":
                # periodic Supervisor self-tick: lets heartbeat timeouts fire
                # even when no worker message arrives (e.g. everyone crashed)
                lc_send_time[0] = t
                if not self.lc.finished and not interrupted:
                    self.lc.on_tick(lc_send, t)
                    self._schedule_heartbeat_tick(t)
            elif kind == "smsg":
                assert msg is not None
                if self.injector.is_crashed(rank):
                    continue
                if tracer.enabled:
                    tracer.emit(t, "deliver", rank, src=msg.src, tag=msg.tag.value)
                self._inbox[rank].append(msg)
                self._clock[rank] = max(self._clock[rank], t)
                self._schedule_wake(rank)
            elif kind == "wake":
                self._wake_scheduled.discard(rank)
                if tracer.enabled:
                    tracer.emit(t, "wake", rank)
                self._run_solver(rank)
        if not self.lc.finished:
            lc_send_time[0] = self.virtual_time
            self.lc.interrupt(lc_send, self.virtual_time)
        # drain termination messages so surviving solver states are final
        while self._events:
            t, _, kind, rank, msg = heapq.heappop(self._events)
            if kind == "smsg" and msg is not None and not self.injector.is_crashed(rank):
                solver = self.solvers[rank]
                solver.handle_message(msg, lambda *a, **k: None)
        self.lc.stats.solver_busy = dict(self._busy)
        self.injector.export_stats(self.lc.stats)
        self._compute_idle_ratio()

    def _schedule_heartbeat_tick(self, now: float) -> None:
        timeout = self.config.heartbeat_timeout
        if timeout == float("inf"):
            return
        step = max(timeout / 2.0, 1e-6)
        self._push(min(now + step, self.config.time_limit + step), "tick", LOAD_COORDINATOR_RANK)

    def _schedule_wake(self, rank: int) -> None:
        if rank not in self._wake_scheduled:
            self._wake_scheduled.add(rank)
            self._push(self._clock[rank], "wake", rank)

    def _run_solver(self, rank: int) -> None:
        solver = self.solvers[rank]
        clock = self._clock[rank]
        if self.injector.maybe_crash(rank, clock, solver.nodes_processed_total):
            self.tracer.emit(clock, "crash", rank, nodes=solver.nodes_processed_total)
            self._inbox[rank].clear()
            return
        send = self._send_factory(rank, lambda: self._clock[rank])
        for msg in self._inbox[rank]:
            solver.handle_message(msg, send)
        self._inbox[rank].clear()
        if solver.state == "terminated":
            return
        nodes_before = solver.nodes_processed_total
        work = solver.do_work(send)
        self._nodes_total += solver.nodes_processed_total - nodes_before
        if work is not None:
            self._clock[rank] = clock + work
            self._busy[rank] += work
            if self.tracer.enabled:
                self.tracer.emit(clock, "work", rank, work=work)
            self._schedule_wake(rank)
        # idle solvers sleep until the next message arrives

    def _compute_idle_ratio(self) -> None:
        span = self.lc.stats.computing_time or self.virtual_time
        if span <= 0 or not self.solvers:
            self.lc.metrics.set("idle_ratio", 0.0)
            return
        total = span * len(self.solvers)
        busy = sum(min(b, span) for b in self._busy.values())
        self.lc.metrics.set("idle_ratio", max(0.0, 1.0 - busy / total))


class ThreadEngine:
    """Real-thread engine (Pthreads/C++11 analogue)."""

    def __init__(
        self,
        lc: LoadCoordinator,
        solvers: dict[int, ParaSolver],
        config: UGConfig,
        tracer: Tracer | None = None,
    ) -> None:
        self.lc = lc
        self.solvers = solvers
        self.config = config
        self.injector = FaultInjector(config.fault_plan)
        lc.fault_injector = self.injector
        self.tracer = attach_run_tracer(tracer, config, lc, solvers)
        self._msg_seq = SeqStamper()  # per-run message sequence numbers
        self._queues: dict[int, queue.Queue] = {r: queue.Queue() for r in solvers}
        self._lc_queue: queue.Queue = queue.Queue()
        self._t0 = 0.0
        self._busy: dict[int, float] = {r: 0.0 for r in solvers}
        # running node total shared by the solver threads (lock-guarded)
        # so the main loop's node-limit check needn't re-sum every solver
        self._nodes_total = 0
        self._nodes_lock = threading.Lock()

    def _send(self, src: int):
        def send(dst: int, tag: MessageTag, payload: Any) -> None:
            self.injector.check_send(src)  # may raise a transient CommError
            msg = Message(tag=tag, src=src, dst=dst, payload=payload, seq=self._msg_seq())
            action, extra_delay = self.injector.message_action(msg)
            if self.tracer.enabled:
                self.tracer.emit(self._now(), "send", src, dst=dst, tag=tag.value, action=action)
            if action == "drop":
                return
            delivered = self._wire_roundtrip(msg)
            if delivered is None:
                return  # frame fault: the wire ate it
            target = self._lc_queue if dst == LOAD_COORDINATOR_RANK else self._queues[dst]
            if action == "delay" and extra_delay > 0:
                timer = threading.Timer(extra_delay, target.put, args=(delivered,))
                timer.daemon = True
                timer.start()
            else:
                target.put(delivered)

        return make_retrying_send(send, self.config, self.injector, real_time=True)

    def _wire_roundtrip(self, msg: Message) -> Message | None:
        """Every delivery crosses the binary codec, exactly like a process
        run: the receiver gets a *fresh* decoded message (mutating a
        delivered payload can never alias the sender's objects) and frame
        faults from the plan damage real bytes that the CRC check rejects
        (a lost message — survivable, PR 1's heartbeat/reclaim path)."""
        metrics = self.lc.metrics
        frame = encode_message(msg)
        action = self.injector.frame_action(msg.src, msg.dst)
        if action == "drop":
            if self.tracer.enabled:
                self.tracer.emit(self._now(), "frame_fault", msg.src, action="drop", dst=msg.dst)
            return None
        if action in ("corrupt", "truncate"):
            if self.tracer.enabled:
                self.tracer.emit(self._now(), "frame_fault", msg.src, action=action, dst=msg.dst)
            frame = corrupt_frame(frame, action)
        metrics.inc("net_frames_sent")
        metrics.inc("net_bytes_sent", len(frame))
        try:
            delivered = decode_message(frame)
        except FrameDecodeError as exc:
            metrics.inc("net_decode_errors")
            if self.tracer.enabled:
                self.tracer.emit(self._now(), "net_decode_error", msg.dst, error=type(exc).__name__)
            return None
        metrics.inc("net_frames_received")
        metrics.inc("net_bytes_received", len(frame))
        return delivered

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _solver_loop(self, rank: int) -> None:
        solver = self.solvers[rank]
        q = self._queues[rank]
        send = self._send(rank)
        while solver.state != "terminated":
            if self.injector.maybe_crash(rank, self._now(), solver.nodes_processed_total):
                self.tracer.emit(self._now(), "crash", rank, nodes=solver.nodes_processed_total)
                return  # simulate a killed worker process: vanish silently
            if solver.is_busy:
                # busy: poll the queue without blocking, then advance the tree;
                # the whole burst (message handling + work) counts as busy so
                # idle_ratio measures only genuine waiting-for-work time
                t_burst = time.perf_counter()
                while True:
                    try:
                        msg = q.get_nowait()
                    except queue.Empty:
                        break
                    if self.tracer.enabled:
                        self.tracer.emit(self._now(), "deliver", rank, src=msg.src, tag=msg.tag.value)
                    solver.handle_message(msg, send)
                    if solver.state == "terminated":
                        self._busy[rank] += time.perf_counter() - t_burst
                        return
                if not solver.is_busy:
                    self._busy[rank] += time.perf_counter() - t_burst
                    continue  # a message flipped us idle; block on the queue
                start = self._now()
                nodes_before = solver.nodes_processed_total
                t0 = time.perf_counter()
                solver.do_work(send)
                elapsed = time.perf_counter() - t0
                self._busy[rank] += time.perf_counter() - t_burst
                delta = solver.nodes_processed_total - nodes_before
                if delta:
                    with self._nodes_lock:
                        self._nodes_total += delta
                if self.tracer.enabled:
                    self.tracer.emit(start, "work", rank, work=elapsed)
            else:
                # idle: block with a timeout (no busy-wait) until work or
                # termination arrives; the timeout keeps crash checks alive
                try:
                    msg = q.get(timeout=0.2)
                except queue.Empty:
                    continue
                t0 = time.perf_counter()
                solver.handle_message(msg, send)
                self._busy[rank] += time.perf_counter() - t0

    def run(self) -> None:
        self._t0 = time.perf_counter()
        send = self._send(LOAD_COORDINATOR_RANK)
        threads = [
            threading.Thread(target=self._solver_loop, args=(rank,), daemon=True, name=f"ParaSolver-{rank}")
            for rank in self.solvers
        ]
        for th in threads:
            th.start()
        self.lc.start(send, 0.0)
        node_limit = self.config.node_limit
        while not self.lc.finished:
            now = self._now()
            with self._nodes_lock:
                nodes_total = self._nodes_total
            if now >= self.config.time_limit or nodes_total >= node_limit:
                self.lc.interrupt(send, now)
                break
            try:
                msg = self._lc_queue.get(timeout=0.2)
            except queue.Empty:
                self.lc.on_tick(send, self._now())
                continue
            if self.tracer.enabled:
                self.tracer.emit(self._now(), "deliver", LOAD_COORDINATOR_RANK, src=msg.src, tag=msg.tag.value)
            self.lc.handle_message(msg, send, self._now())
            self.lc.on_tick(send, self._now())
        for th in threads:
            th.join(timeout=10.0)
        alive = [th.name for th in threads if th.is_alive()]
        if alive:  # pragma: no cover - liveness failure
            raise CommError(f"ParaSolver threads did not terminate: {alive}")
        self.lc.stats.solver_busy = dict(self._busy)
        self.injector.export_stats(self.lc.stats)
        span = self.lc.stats.computing_time or self._now()
        total = span * max(len(self.solvers), 1)
        busy = sum(min(b, span) for b in self._busy.values())
        self.lc.metrics.set("idle_ratio", max(0.0, 1.0 - busy / total) if total > 0 else 0.0)
