"""UG run configuration."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class UGConfig:
    """Knobs of a ug[...] run.

    Times are in virtual seconds under the SimEngine, wall-clock seconds
    under the ThreadEngine.
    """

    ramp_up: str = "normal"  # "normal" | "racing"

    # racing ramp-up: winner is declared at the deadline, or earlier when
    # some racer accumulates this many open nodes
    racing_deadline: float = 0.5
    racing_open_node_threshold: int = 50

    # dynamic load balancing (Algorithm 1's collect mode)
    pool_buffer: int = 1  # want at least n_idle + buffer heavy nodes pooled
    pool_high_watermark_factor: float = 2.0
    max_collectors: int = 4
    min_open_to_shed: int = 4  # a collecting solver keeps this many nodes

    # bound pruning: a node with dual_bound >= incumbent - objective_epsilon
    # is discarded; set to 1 - 1e-6 for integral-objective instances
    objective_epsilon: float = 1e-9

    # worker status cadence, in work units
    status_interval_work: float = 0.05

    # checkpointing
    checkpoint_path: str | None = None
    checkpoint_interval: float = 5.0

    # limits
    time_limit: float = float("inf")
    node_limit: int = 10**12

    # SimEngine message latency (virtual seconds)
    latency: float = 1e-4
