"""UG run configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults uses messages only)
    from repro.ug.cluster import ClusterPlan
    from repro.ug.faults import FaultPlan


@dataclass
class UGConfig:
    """Knobs of a ug[...] run.

    Times are in virtual seconds under the SimEngine, wall-clock seconds
    under the ThreadEngine.
    """

    ramp_up: str = "normal"  # "normal" | "racing"

    # racing ramp-up: winner is declared at the deadline, or earlier when
    # some racer accumulates this many open nodes
    racing_deadline: float = 0.5
    racing_open_node_threshold: int = 50

    # dynamic load balancing (Algorithm 1's collect mode)
    pool_buffer: int = 1  # want at least n_idle + buffer heavy nodes pooled
    pool_high_watermark_factor: float = 2.0
    max_collectors: int = 4
    min_open_to_shed: int = 4  # a collecting solver keeps this many nodes

    # bound pruning: a node with dual_bound >= incumbent - objective_epsilon
    # is discarded; set to 1 - 1e-6 for integral-objective instances
    objective_epsilon: float = 1e-9

    # worker status cadence, in work units
    status_interval_work: float = 0.05

    # checkpointing
    checkpoint_path: str | None = None
    checkpoint_interval: float = 5.0
    # rotating .bak copies kept next to the checkpoint (cp.json.bak1 is the
    # newest backup); load_checkpoint falls back to them on corruption
    checkpoint_retain: int = 2

    # limits
    time_limit: float = float("inf")
    node_limit: int = 10**12

    # SimEngine message latency (virtual seconds)
    latency: float = 1e-4

    # distributed-memory engine (repro.ug.net) -----------------------------
    # frame carrier for the ProcessEngine: "pipe" (multiprocessing.Pipe,
    # default) or "tcp" (sockets + rank/token hello handshake)
    net_transport: str = "pipe"
    # parent/child receive-poll granularity, seconds of real time
    net_poll_interval: float = 0.02
    # TCP dial-in: per-attempt connect timeout and retry budget
    net_connect_timeout: float = 5.0
    net_connect_retries: int = 5
    # bounded outbound frame queue (TCP); a full queue blocks the sender
    # (backpressure) instead of growing without limit
    net_outbound_queue: int = 1024
    # how long the parent waits for children to honor TERMINATION before
    # reaping them forcefully
    net_shutdown_grace: float = 10.0
    # wire-path coalescing: a collecting ParaSolver sheds up to this many
    # open nodes per step into ONE NODE_TRANSFER (1 = classic single-node
    # shedding, bit-identical to the pre-batching protocol)
    net_batch_nodes: int = 1
    # incumbent broadcast debounce, seconds (engine time): improvements
    # inside the window are held and only the best value is flushed on the
    # next tick; 0 broadcasts every improvement immediately.  Safe for the
    # tree audits — a delayed incumbent only delays pruning, the trace's
    # incumbent events (emitted at acceptance) stay monotone either way
    net_incumbent_debounce: float = 0.0
    # warm worker pool: pipe-mode ProcessEngine ranks are re-armed from a
    # process pool (RESET handshake) instead of paying spawn-per-run;
    # automatically bypassed under a fault plan so injected crashes and
    # frame faults keep their per-run determinism
    net_warm_pool: bool = True

    # observability (repro.obs): structured event tracing; disabled by
    # default so untraced runs pay one branch per instrumentation point.
    # Under the SimEngine a trace replays bit-identically for the same
    # seed + fault_plan; the ring buffer caps memory at trace_capacity
    # events (oldest dropped, counted in Tracer.dropped)
    trace_enabled: bool = False
    trace_capacity: int = 1 << 16

    # fault tolerance -----------------------------------------------------
    # an *active* solver silent for this long is declared dead, its node
    # reclaimed and the run continues with the survivors; inf disables
    # detection (safe default: a long sequential root solve sends no
    # heartbeats and must not be declared dead)
    heartbeat_timeout: float = float("inf")
    # a reclaimed node is retried at most this many times before the run
    # gives up on it (and stops claiming a proven optimum)
    max_node_retries: int = 3
    # bounded retry for transient CommErrors on sends (0 disables the wrapper)
    send_retries: int = 3
    send_backoff: float = 0.01  # seconds, doubled per retry (ThreadEngine only)
    # deterministic failure schedule executed by the engines (tests/chaos runs)
    fault_plan: FaultPlan | None = None

    # elastic cluster runtime (repro.ug.cluster) ---------------------------
    # scripted membership changes (rank joins/drains) executed by the
    # elastic engines; a plan with a RestartPolicy also arms the watchdog
    cluster_plan: ClusterPlan | None = None
    # a rank asked to DRAIN that stays silent this long is escalated onto
    # the death/reclaim path (the drain courtesy has an expiry date)
    drain_grace: float = 5.0

    def __post_init__(self) -> None:
        # reject degenerate timing/membership knobs at construction: a
        # non-positive timeout silently livelocks (or spins) downstream,
        # which is far harder to diagnose than a ValueError here
        for name in (
            "racing_deadline",
            "status_interval_work",
            "checkpoint_interval",
            "time_limit",
            "latency",
            "net_poll_interval",
            "net_connect_timeout",
            "net_shutdown_grace",
            "heartbeat_timeout",
            "drain_grace",
        ):
            value = getattr(self, name)
            if not value > 0:  # also catches NaN
                raise ValueError(f"UGConfig.{name} must be positive, got {value!r}")
        for name in (
            "racing_open_node_threshold",
            "node_limit",
            "net_outbound_queue",
            "net_batch_nodes",
            "trace_capacity",
        ):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"UGConfig.{name} must be at least 1, got {value!r}")
        for name in (
            "pool_buffer",
            "max_collectors",
            "net_connect_retries",
            "net_incumbent_debounce",
            "max_node_retries",
            "send_retries",
            "send_backoff",
            "checkpoint_retain",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"UGConfig.{name} must be non-negative, got {value!r}")
        if self.net_transport not in ("pipe", "tcp"):
            raise ValueError(
                f"UGConfig.net_transport must be 'pipe' or 'tcp', got {self.net_transport!r}"
            )
