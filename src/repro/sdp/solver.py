"""SCIP-SDP analogue: the customized MISDP CIP solver.

``approach="sdp"`` installs the ADMM relaxator (nonlinear B&B);
``approach="lp"`` drops the relaxator and lets eigenvector cuts + the LP
carry the bounding (the cutting-plane approach). Everything else —
eigcut constraint handler (feasibility), dual fixing, randomized
rounding, integer branching — is shared between the approaches, exactly
as in SCIP-SDP.

UG integration: a subproblem travels as plain variable-bound changes
(``{"bounds": [[i, lb, ub], ...]}``), applied to the root model on
arrival; the CIP presolve layer re-presolves under the received bounds
(layered presolving).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.cip.branching import MostFractionalBranching, PseudocostBranching
from repro.cip.model import Model, VarType
from repro.cip.node import Node
from repro.cip.params import ParamSet
from repro.cip.propagation import IntegralityPropagator, LinearActivityPropagator
from repro.cip.result import SolveResult, SolveStatus
from repro.cip.solver import CIPSolver
from repro.exceptions import ModelError
from repro.sdp.branching import SpatialBranching
from repro.sdp.eigcuts import EigenvectorCutHandler, initial_diagonal_cuts
from repro.sdp.heuristics import RandomizedRoundingHeuristic
from repro.sdp.model import MISDP
from repro.sdp.propagators import DualFixingPropagator
from repro.sdp.relaxator import SDPRelaxator

BoundChange = tuple[int, float, float]


@dataclass
class MISDPSolution:
    """Final outcome in the original (sup) sense."""

    status: SolveStatus
    objective: float  # b'y of the best solution (-inf if none)
    y: np.ndarray | None
    dual_bound: float  # upper bound on b'y
    nodes_processed: int
    stats: Any = None


class MISDPSolver:
    """High-level MISDP solver supporting both solution approaches."""

    def __init__(
        self,
        misdp: MISDP,
        params: ParamSet | None = None,
        approach: str | None = None,
        seed: int = 0,
    ) -> None:
        if approach is None:
            approach = "sdp"
        if approach not in ("sdp", "lp"):
            raise ModelError(f"unknown approach {approach!r}; use 'sdp' or 'lp'")
        self.misdp = misdp
        self.params = params or ParamSet()
        if self.params.gap_limit <= 0.0:
            # a first-order SDP oracle cannot certify 1e-9 gaps; SCIP-SDP's
            # default relative gap with interior-point backends is similar
            self.params = self.params.with_changes(gap_limit=1e-4)
        # the racing settings encode the approach in the extras
        self.approach = str(self.params.get_extra("misdp/approach", approach))
        self.seed = seed
        self.cip: CIPSolver | None = None

    def prepare(self, bound_changes: tuple[BoundChange, ...] = (), cutoff_value: float | None = None) -> None:
        """Build the CIP for a (sub)problem given UG bound changes."""
        misdp = self.misdp
        model = Model(misdp.name, data=misdp)
        model.obj_sense = -1  # original problem is a maximisation
        lb = misdp.lb.copy()
        ub = misdp.ub.copy()
        for i, lo, hi in bound_changes:
            lb[i] = max(lb[i], lo)
            ub[i] = min(ub[i], hi)
        for i in range(misdp.num_vars):
            vtype = VarType.INTEGER if i in set(misdp.integers) else VarType.CONTINUOUS
            model.add_variable(f"y{i}", vtype, lb=lb[i], ub=ub[i], obj=-float(misdp.b[i]))
        for row in misdp.linear_rows:
            model.add_constraint(dict(row.coefs), row.lhs, row.rhs, row.name)
        int_set = set(misdp.integers)
        model.objective_integral = all(
            (i in int_set and float(misdp.b[i]).is_integer()) or misdp.b[i] == 0.0
            for i in range(misdp.num_vars)
        )

        params = self.params.with_changes(permutation_seed=self.params.permutation_seed + self.seed)
        cip = CIPSolver(model, params)
        cip.include_constraint_handler(EigenvectorCutHandler(misdp))
        cip.include_propagator(IntegralityPropagator())
        cip.include_propagator(LinearActivityPropagator())
        cip.include_propagator(DualFixingPropagator(misdp))
        cip.include_heuristic(RandomizedRoundingHeuristic(misdp))
        cip.include_branching_rule(PseudocostBranching())
        cip.include_branching_rule(MostFractionalBranching())
        cip.include_branching_rule(SpatialBranching(misdp))
        if self.approach == "sdp":
            cip.set_relaxator(SDPRelaxator(misdp))
        else:
            for cut in initial_diagonal_cuts(misdp):
                cip.cutpool.add(cut)
        cip.setup()
        if cutoff_value is not None:
            cip.set_cutoff_value(cutoff_value)
        self.cip = cip

    def solve(self, node_limit: int | None = None, time_limit: float | None = None) -> MISDPSolution:
        if self.cip is None:
            self.prepare()
        assert self.cip is not None
        result = self.cip.solve(node_limit=node_limit, time_limit=time_limit)
        return self._to_solution(result)

    def _to_solution(self, result: SolveResult) -> MISDPSolution:
        y = None
        obj = -math.inf
        if result.best_solution is not None:
            if result.best_solution.x is not None:
                y = np.asarray(result.best_solution.x[: self.misdp.num_vars], dtype=float)
            elif result.best_solution.data is not None:
                y = np.asarray(result.best_solution.data, dtype=float)
            obj = -result.best_solution.value  # back to sup sense
        return MISDPSolution(
            result.status,
            obj,
            y,
            -result.dual_bound if math.isfinite(result.dual_bound) else math.inf,
            result.nodes_processed,
            result.stats,
        )

    # -- UG-facing helper ---------------------------------------------------------

    def node_to_subproblem(self, node: Node) -> tuple[BoundChange, ...]:
        """Serialize an extracted CIP node as plain bound changes."""
        return tuple(
            (int(j), float(lo), float(hi)) for j, (lo, hi) in sorted(node.bound_changes.items())
        )
