"""SDP-specific branching: spatial splits on continuous variables.

When all integer variables are fixed but the point still violates a PSD
block (and eigenvector cuts have gone numerically dull), the node can
only be resolved by splitting a *continuous* domain — the spatial
branch-and-bound idea the paper's CIP section describes for MINLP
("branching on any variable that is involved in g_j(x) may be applied").
The variable is chosen by eigencut involvement: largest |v' A_i v| times
remaining domain width for the most negative eigenpair.
"""

from __future__ import annotations

import numpy as np

from repro.cip.node import Node
from repro.cip.plugins import BranchingRule, ChildSpec
from repro.cip.solver import CIPSolver
from repro.sdp.linalg import min_eig
from repro.sdp.model import MISDP

_MIN_WIDTH = 1e-6


class SpatialBranching(BranchingRule):
    """Split a continuous variable involved in the most violated block."""

    name = "sdp_spatial"
    priority = 1  # only after every integer rule has passed

    def __init__(self, misdp: MISDP) -> None:
        self.misdp = misdp

    def branch(self, solver: CIPSolver, node: Node, x: np.ndarray | None) -> list[ChildSpec]:
        if x is None:
            return []
        y = x[: self.misdp.num_vars]
        worst_lam = 0.0
        worst_vec: np.ndarray | None = None
        worst_block = None
        for block in self.misdp.blocks:
            Z = block.evaluate(y)
            lam, v = min_eig(Z)
            scale = max(1.0, float(np.abs(Z).max()))
            if lam / scale < worst_lam:
                worst_lam, worst_vec, worst_block = lam / scale, v, block
        if worst_block is None or worst_vec is None or worst_lam > -solver.tol.feas:
            return []
        integer_set = set(self.misdp.integers)
        best_i = -1
        best_score = 0.0
        for i, A in worst_block.coefs.items():
            if i in integer_set:
                continue
            lo, hi = solver.local_bounds(i)
            width = hi - lo
            if width < _MIN_WIDTH:
                continue
            score = abs(float(worst_vec @ A @ worst_vec)) * min(width, 1e3)
            if score > best_score:
                best_score, best_i = score, i
        if best_i < 0 or best_score < 1e-10:
            return []
        lo, hi = solver.local_bounds(best_i)
        point = float(np.clip(y[best_i], lo + width_eps(lo, hi), hi - width_eps(lo, hi)))
        return [
            ChildSpec(bound_changes={best_i: (lo, point)}),
            ChildSpec(bound_changes={best_i: (point, hi)}),
        ]


def width_eps(lo: float, hi: float) -> float:
    """Keep the split strictly interior so both children shrink."""
    return max(1e-9, 0.05 * (hi - lo))
