"""MISDP presolve/propagation: dual fixing (simplified form).

SCIP-SDP's dual fixing exploits objective monotonicity: if variable
``y_i`` appears in every PSD block with a negative semidefinite
coefficient matrix ``A_i`` (so *decreasing* y_i only relaxes
``C - sum A y >= 0``) and its objective coefficient points the same way,
the variable can be fixed to its bound. We implement the sound special
case with no linear-row interference.
"""

from __future__ import annotations

import numpy as np

from repro.cip.node import Node
from repro.cip.plugins import PropagationResult, PropagationStatus, Propagator
from repro.cip.solver import CIPSolver
from repro.sdp.model import MISDP


def _semidefinite_sign(A: np.ndarray, tol: float = 1e-9) -> int:
    """+1 if A is PSD, -1 if NSD, 0 otherwise."""
    vals = np.linalg.eigvalsh(A)
    if vals[0] >= -tol:
        return 1
    if vals[-1] <= tol:
        return -1
    return 0


class DualFixingPropagator(Propagator):
    """Fix variables whose movement towards a bound never hurts."""

    name = "sdp_dual_fixing"
    priority = 60

    def __init__(self, misdp: MISDP) -> None:
        self.misdp = misdp
        self._signs: dict[int, int] | None = None

    def _variable_signs(self) -> dict[int, int]:
        """Per variable: +1 if raising it only relaxes all blocks, -1 if
        lowering does, 0 if mixed."""
        if self._signs is not None:
            return self._signs
        signs: dict[int, int] = {}
        for block in self.misdp.blocks:
            for i, A in block.coefs.items():
                s = _semidefinite_sign(A)
                # Z = C - A y: raising y relaxes iff -A is PSD, i.e. A NSD
                direction = 1 if s < 0 else (-1 if s > 0 else 0)
                if i not in signs:
                    signs[i] = direction
                elif signs[i] != direction:
                    signs[i] = 0
        self._signs = signs
        return signs

    def propagate(self, solver: CIPSolver, node: Node) -> PropagationResult:
        if self.misdp.linear_rows:
            return PropagationResult()  # rows may oppose the movement: skip
        signs = self._variable_signs()
        b = self.misdp.b
        tightened = 0
        for i, direction in signs.items():
            if direction == 0:
                continue
            lo, hi = solver.local_bounds(i)
            if hi - lo <= solver.tol.eps:
                continue
            # maximise b'y (CIP minimises -b'y): move y_i up if b_i >= 0
            if b[i] >= 0 and direction > 0 and np.isfinite(hi):
                if solver.tighten_lb(i, hi):
                    tightened += 1
            elif b[i] <= 0 and direction < 0 and np.isfinite(lo):
                if solver.tighten_ub(i, lo):
                    tightened += 1
        status = PropagationStatus.REDUCED if tightened else PropagationStatus.UNCHANGED
        return PropagationResult(status, tightened)
