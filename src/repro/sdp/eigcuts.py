"""Sherali–Fraticelli eigenvector cuts — the LP-based approach.

For a candidate y* violating ``Z(y) = C - sum A_i y_i >= 0``, any
eigenvector v to a negative eigenvalue of Z(y*) yields the valid cut

    v' (C - sum A_i y_i) v >= 0
    <=>  sum_i (v' A_i v) y_i <= v' C v,

violated at y* by |lambda_min| * ||v||^2 (equation (9) of the paper).
The handler owns SDP feasibility for the CIP solver: ``check`` tests all
blocks' minimum eigenvalues, ``separate`` emits one cut per sufficiently
negative eigenpair.
"""

from __future__ import annotations

import numpy as np

from repro.cip.node import Node
from repro.cip.plugins import ConstraintHandler, Cut
from repro.cip.solver import CIPSolver
from repro.sdp.linalg import eig_pairs_below, min_eig
from repro.sdp.model import MISDP


class EigenvectorCutHandler(ConstraintHandler):
    """PSD-block constraint handler via eigenvector cuts.

    Model variable ``i`` corresponds to MISDP variable ``i`` (the CIP
    model is built with identical indexing by the MISDP solver).
    """

    name = "sdp_eigcuts"
    priority = 100

    def __init__(self, misdp: MISDP, max_cuts_per_block: int = 4, coef_zero_tol: float = 1e-10) -> None:
        self.misdp = misdp
        self.max_cuts_per_block = max_cuts_per_block
        self.coef_zero_tol = coef_zero_tol
        self._cut_counter = 0

    def check(self, solver: CIPSolver, x: np.ndarray) -> bool:
        y = x[: self.misdp.num_vars]
        for block in self.misdp.blocks:
            Z = block.evaluate(y)
            lam, _ = min_eig(Z)
            if lam < -solver.tol.feas * max(1.0, float(np.abs(Z).max())):
                return False
        return True

    def separate(self, solver: CIPSolver, node: Node, x: np.ndarray) -> list[Cut]:
        y = x[: self.misdp.num_vars]
        cuts: list[Cut] = []
        for bi, block in enumerate(self.misdp.blocks):
            Z = block.evaluate(y)
            scale = max(1.0, float(np.abs(Z).max()))
            pairs = eig_pairs_below(Z, -solver.tol.feas * scale)
            for lam, v in pairs[: self.max_cuts_per_block]:
                coefs: dict[int, float] = {}
                for i, A in block.coefs.items():
                    c = float(v @ A @ v)
                    if abs(c) > self.coef_zero_tol:
                        coefs[i] = c
                rhs = float(v @ block.C @ v)
                if not coefs:
                    continue  # constant infeasibility is caught by check()
                self._cut_counter += 1
                cuts.append(Cut.from_dict(coefs, rhs=rhs, name=f"eig_b{bi}_{self._cut_counter}"))
        return cuts


def initial_diagonal_cuts(misdp: MISDP) -> list[Cut]:
    """Unit-vector cuts (diagonal nonneg) that seed the LP approach's root.

    These are the eigenvector cuts for v = e_j and cost nothing to state;
    without them the first LP is often unbounded in the cut directions.
    """
    cuts: list[Cut] = []
    for bi, block in enumerate(misdp.blocks):
        n = block.size
        for j in range(n):
            coefs = {}
            for i, A in block.coefs.items():
                if abs(A[j, j]) > 1e-12:
                    coefs[i] = float(A[j, j])
            if coefs:
                cuts.append(Cut.from_dict(coefs, rhs=float(block.C[j, j]), name=f"diag_b{bi}_{j}"))
    return cuts
