"""MISDP primal heuristics: randomized rounding with continuous polish.

SCIP-SDP's randomized rounding: round each integer variable to one of
its neighbouring integers with probability given by the fractional part
of the relaxation value; then solve the continuous SDP with the integers
fixed and keep the point if feasible.
"""

from __future__ import annotations

import numpy as np

from repro.cip.node import Node
from repro.cip.plugins import Heuristic
from repro.cip.solver import CIPSolver
from repro.sdp.admm import solve_sdp_relaxation
from repro.sdp.model import MISDP


class RandomizedRoundingHeuristic(Heuristic):
    """Probabilistic rounding of the relaxation point + SDP polish."""

    name = "sdp_randomized_rounding"
    priority = 50

    def __init__(self, misdp: MISDP, n_tries: int = 3, polish_iters: int = 1500) -> None:
        self.misdp = misdp
        self.n_tries = n_tries
        self.polish_iters = polish_iters

    def run(self, solver: CIPSolver, node: Node, x: np.ndarray | None) -> None:
        if x is None:
            return
        m = self.misdp.num_vars
        y_rel = np.asarray(x[:m], dtype=float)
        integers = self.misdp.integers
        has_continuous = len(integers) < m
        for _try in range(self.n_tries):
            y = y_rel.copy()
            for i in integers:
                lo, hi = solver.local_bounds(i)
                frac = y[i] - np.floor(y[i])
                up = solver.rng.random() < frac
                y[i] = float(np.ceil(y[i]) if up else np.floor(y[i]))
                y[i] = min(max(y[i], np.ceil(lo - 1e-9)), np.floor(hi + 1e-9))
            if has_continuous:
                lb = solver._local_lb[:m].copy()  # noqa: SLF001
                ub = solver._local_ub[:m].copy()  # noqa: SLF001
                for i in integers:
                    lb[i] = ub[i] = y[i]
                res = solve_sdp_relaxation(self.misdp, lb, ub, max_iter=self.polish_iters)
                if res.status != "optimal" or res.y is None:
                    continue
                y = res.y
                for i in integers:
                    y[i] = round(y[i])
            if not self.misdp.is_feasible(y, tol=solver.tol.feas * 10):
                continue
            value = -self.misdp.objective(y) + solver.model.obj_offset
            if solver.add_solution(value, y, data=[float(v) for v in y], check=True):
                solver.stats.heuristic_solutions += 1
                return
