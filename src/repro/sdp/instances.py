"""Seeded MISDP instance generators for the three CBLIB families of
Table 4: truss topology design (TTD), cardinality-constrained least
squares (CLS) and minimum k-partitioning (Mk-P).

The formulations follow the literature the paper cites (Kočvara/Mars for
TTD, Gally's thesis for CLS and Mk-P); sizes are scaled to this solver.
The structural properties driving Table 4/Figure 1 — CLS being very
LP-friendly, Mk-P being SDP-affine combinatorial, TTD in between — are
properties of the formulations and carry over (DESIGN.md §4).
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.exceptions import ModelError
from repro.sdp.model import MISDP
from repro.utils import make_rng


def truss_topology_design(
    n_cols: int = 2,
    max_bars: int | None = None,
    compliance_bound: float = 60.0,
    seed: int = 0,
) -> MISDP:
    """Truss topology design with binary bar-existence variables.

    Ground structure: nodes on a 2 x (n_cols+1) grid; the left column is
    clamped, a unit load pulls down at the right. Variables: continuous
    cross-sections x_j in [0, xmax], binaries z_j, coupling x_j <= xmax z_j
    and a cardinality budget. The compliance constraint is the SDP block

        [[ gamma, f' ], [ f, K(x) ]]  >= 0,   K(x) = sum_j x_j K_j.

    Objective: minimise total volume  sum_j l_j x_j  (as sup of the
    negation).
    """
    rng = make_rng(seed)
    nodes = [(cx, cy) for cx in range(n_cols + 1) for cy in (0, 1)]
    fixed = {i for i, (cx, _cy) in enumerate(nodes) if cx == 0}
    free = [i for i in range(len(nodes)) if i not in fixed]
    dof = {node: (2 * k, 2 * k + 1) for k, node in enumerate(free)}
    ndof = 2 * len(free)
    bars = [
        (i, j)
        for i, j in itertools.combinations(range(len(nodes)), 2)
        if math.dist(nodes[i], nodes[j]) <= math.sqrt(2) + 1e-9 and not (i in fixed and j in fixed)
    ]
    if max_bars is not None:
        bars = bars[:max_bars]
    nb = len(bars)

    lengths = np.array([math.dist(nodes[i], nodes[j]) for i, j in bars])
    stiff = []
    for (i, j), L in zip(bars, lengths):
        (xi, yi), (xj, yj) = nodes[i], nodes[j]
        c, s = (xj - xi) / L, (yj - yi) / L
        g = np.zeros(ndof)
        if i in dof:
            g[dof[i][0]], g[dof[i][1]] = -c, -s
        if j in dof:
            g[dof[j][0]], g[dof[j][1]] = c, s
        stiff.append(np.outer(g, g) / L)

    # unit load: down at the right-most top free node
    load_node = max(free, key=lambda k: (nodes[k][0], nodes[k][1]))
    f = np.zeros(ndof)
    f[dof[load_node][1]] = -1.0

    xmax = 2.0
    budget = max(ndof // 2 + 1, int(0.7 * nb))
    m = 2 * nb  # x vars then z vars
    b = np.concatenate([-lengths, np.zeros(nb)])  # sup -volume
    lb = np.zeros(m)
    ub = np.concatenate([np.full(nb, xmax), np.ones(nb)])
    misdp = MISDP(f"ttd_{n_cols}_{seed}", b, lb, ub, integers=list(range(nb, 2 * nb)))

    size = 1 + ndof
    C = np.zeros((size, size))
    C[0, 0] = compliance_bound
    C[0, 1:] = f
    C[1:, 0] = f
    coefs = {}
    for j, Kj in enumerate(stiff):
        A = np.zeros((size, size))
        A[1:, 1:] = -Kj  # C - A x = [[gamma, f'],[f, K(x)]]
        coefs[j] = A
    misdp.add_block(C, coefs, "compliance")
    for j in range(nb):
        misdp.add_linear_row({j: 1.0, nb + j: -xmax}, rhs=0.0, name=f"link_{j}")
    misdp.add_linear_row({nb + j: 1.0 for j in range(nb)}, rhs=float(budget), name="budget")
    # small random perturbation of lengths diversifies the family
    misdp.b[:nb] *= 1.0 + 0.05 * rng.random(nb)
    return misdp


def cardinality_least_squares(
    n_features: int = 5,
    n_samples: int = 6,
    cardinality: int | None = None,
    big_m: float = 5.0,
    seed: int = 0,
) -> MISDP:
    """Cardinality-constrained least squares as an MISDP.

    minimise ||Ax - d||^2  s.t.  ||x||_0 <= k  via the Schur block

        [[ I_m, Ax - d ], [ (Ax - d)', t ]] >= 0   (=> t >= ||Ax - d||^2)

    with binaries z and indicator bounds -Mz <= x <= Mz. Variables:
    (x_1..x_n, z_1..z_n, t); objective sup(-t).
    """
    rng = make_rng(seed)
    A = rng.normal(size=(n_samples, n_features))
    x_true = np.zeros(n_features)
    support = rng.choice(n_features, size=max(1, n_features // 2), replace=False)
    x_true[support] = rng.normal(scale=2.0, size=len(support))
    d = A @ x_true + 0.1 * rng.normal(size=n_samples)
    k = cardinality if cardinality is not None else max(1, n_features // 2)

    m = 2 * n_features + 1
    t_idx = 2 * n_features
    b = np.zeros(m)
    b[t_idx] = -1.0  # sup -t
    lb = np.concatenate([np.full(n_features, -big_m), np.zeros(n_features), [0.0]])
    ub = np.concatenate([np.full(n_features, big_m), np.ones(n_features), [1e4]])
    misdp = MISDP(
        f"cls_{n_features}x{n_samples}_{seed}",
        b,
        lb,
        ub,
        integers=list(range(n_features, 2 * n_features)),
    )

    size = n_samples + 1
    C = np.zeros((size, size))
    C[:n_samples, :n_samples] = np.eye(n_samples)
    C[:n_samples, -1] = -d
    C[-1, :n_samples] = -d
    coefs: dict[int, np.ndarray] = {}
    for j in range(n_features):
        Aj = np.zeros((size, size))
        Aj[:n_samples, -1] = -A[:, j]
        Aj[-1, :n_samples] = -A[:, j]
        coefs[j] = Aj
    At = np.zeros((size, size))
    At[-1, -1] = -1.0
    coefs[t_idx] = At
    misdp.add_block(C, coefs, "schur")
    for j in range(n_features):
        misdp.add_linear_row({j: 1.0, n_features + j: -big_m}, rhs=0.0, name=f"ub_{j}")
        misdp.add_linear_row({j: -1.0, n_features + j: -big_m}, rhs=0.0, name=f"lb_{j}")
    misdp.add_linear_row({n_features + j: 1.0 for j in range(n_features)}, rhs=float(k), name="card")
    return misdp


def min_k_partitioning(n: int = 6, k: int = 3, density: float = 0.7, seed: int = 0) -> MISDP:
    """Minimum k-partitioning as an MISDP (Gally's thesis formulation).

    Binary y_ij (i<j) says i and j share a part; the matrix

        M(y)_ii = 1,  M(y)_ij = (k y_ij - 1) / (k - 1)

    must be PSD (it is exactly the Gram matrix of the k-corner vectors);
    triangle rows strengthen the LP relaxation. Objective: minimise the
    total weight within parts, sup of the negation.
    """
    if k < 2 or n < k:
        raise ModelError("need k >= 2 and n >= k")
    rng = make_rng(seed)
    pairs = list(itertools.combinations(range(n), 2))
    w = {}
    for (i, j) in pairs:
        if rng.random() < density:
            w[(i, j)] = float(rng.integers(1, 10))
    m = len(pairs)
    index = {p: idx for idx, p in enumerate(pairs)}
    b = np.array([-w.get(p, 0.0) for p in pairs])
    misdp = MISDP(
        f"mkp_{n}_{k}_{seed}",
        b,
        np.zeros(m),
        np.ones(m),
        integers=list(range(m)),
    )
    size = n
    C = np.full((size, size), -1.0 / (k - 1))
    np.fill_diagonal(C, 1.0)
    coefs = {}
    scale = k / (k - 1)
    for (i, j), idx in index.items():
        A = np.zeros((size, size))
        A[i, j] = A[j, i] = -scale  # C - A y gives offdiag (k*y - 1)/(k-1)
        coefs[idx] = A
    misdp.add_block(C, coefs, "gram")
    # triangle inequalities: transitivity of "same part"
    for i, j, l in itertools.combinations(range(n), 3):
        ij, jl, il = index[(i, j)], index[(j, l)], index[(i, l)]
        misdp.add_linear_row({ij: 1.0, jl: 1.0, il: -1.0}, rhs=1.0)
        misdp.add_linear_row({ij: 1.0, il: 1.0, jl: -1.0}, rhs=1.0)
        misdp.add_linear_row({jl: 1.0, il: 1.0, ij: -1.0}, rhs=1.0)
    return misdp


def cblib_collection(
    n_ttd: int = 6,
    n_cls: int = 6,
    n_mkp: int = 6,
    seed: int = 0,
) -> list[tuple[str, str, MISDP]]:
    """A scaled-down CBLIB: (family, name, instance) triples.

    The paper runs the complete 194-instance CBLIB; this generator builds
    a seeded suite with the same three families and a size ramp inside
    each family.
    """
    out: list[tuple[str, str, MISDP]] = []
    for t in range(n_ttd):
        inst = truss_topology_design(n_cols=1 + t % 2, seed=seed + t)
        out.append(("TTD", inst.name, inst))
    for t in range(n_cls):
        inst = cardinality_least_squares(n_features=3 + t % 2, n_samples=4 + t % 2, seed=seed + t)
        out.append(("CLS", inst.name, inst))
    for t in range(n_mkp):
        inst = min_k_partitioning(n=4 + t % 2, k=2, seed=seed + t)
        out.append(("Mk-P", inst.name, inst))
    return out
