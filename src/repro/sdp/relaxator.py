"""SDP relaxator plugin — the nonlinear branch-and-bound approach.

At every node the continuous SDP relaxation (under the node's bounds) is
solved by the ADMM engine. Two safeguards mirror SCIP-SDP's engineering:

* if ADMM stalls (typically a Slater-condition violation after
  branching), the *penalty formulation* is retried to decide
  feasibility;
* if the relaxation is feasible but ADMM cannot reach tolerance (highly
  degenerate blocks, e.g. truss compliance with vanishing bars), the node
  is bounded by an internal eigenvector-cut LP loop instead — an outer
  approximation of the SDP cone, hence always a valid bound.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cip.node import Node
from repro.cip.plugins import RelaxationResult, RelaxationStatus, Relaxator
from repro.cip.solver import CIPSolver
from repro.lp import LinearProgram, LPStatus
from repro.sdp.admm import solve_sdp_relaxation
from repro.sdp.linalg import eig_pairs_below
from repro.sdp.model import MISDP

# work-unit model: ADMM iterations dominate; calibrate against LP iters
WORK_PER_ADMM_ITER = 3e-5
WORK_PER_LP_FALLBACK = 5e-3


class SDPRelaxator(Relaxator):
    """Bounds nodes by the continuous SDP relaxation."""

    name = "sdp_relaxator"
    priority = 100

    def __init__(self, misdp: MISDP, max_iter: int = 3000, tol: float = 1e-7) -> None:
        self.misdp = misdp
        self.max_iter = max_iter
        self.tol = tol
        self._fallback_cuts: list[tuple[dict[int, float], float]] = []

    def solve(self, solver: CIPSolver, node: Node) -> RelaxationResult:
        m = self.misdp.num_vars
        lb = solver._local_lb[:m].copy()  # noqa: SLF001 - relaxator is a core plugin
        ub = solver._local_ub[:m].copy()  # noqa: SLF001
        budget = solver.budget if solver.budget.limited else None
        res = solve_sdp_relaxation(
            self.misdp, lb, ub, max_iter=self.max_iter, tol=self.tol, budget=budget
        )
        work = WORK_PER_ADMM_ITER * res.iterations
        if res.status == "infeasible":
            return RelaxationResult(RelaxationStatus.INFEASIBLE, math.inf, None, work)
        if res.status == "time_limit":
            # deadline expired mid-ADMM: no penalty retry, no LP fallback —
            # the node is handed back unbounded so the solve can stop
            return RelaxationResult(RelaxationStatus.FAILED, -math.inf, None, work)
        if res.status == "optimal" and res.y is not None:
            bound = -res.safe_upper_bound + solver.model.obj_offset
            return RelaxationResult(RelaxationStatus.OPTIMAL, bound, res.y, work)
        # ADMM stalled — typically a Slater-condition violation after
        # branching. The penalty formulation (min r with C - A(y) + rI >= 0)
        # decides feasibility; bounding falls back to eigenvector-cut LPs.
        pres = solve_sdp_relaxation(
            self.misdp, lb, ub, max_iter=self.max_iter, tol=self.tol, penalty=True, budget=budget
        )
        work += WORK_PER_ADMM_ITER * pres.iterations
        if pres.status == "infeasible":
            return RelaxationResult(RelaxationStatus.INFEASIBLE, math.inf, None, work)
        if pres.status == "time_limit":
            return RelaxationResult(RelaxationStatus.FAILED, -math.inf, None, work)
        return self._lp_fallback(solver, lb, ub, work)

    def _lp_fallback(
        self, solver: CIPSolver, lb: np.ndarray, ub: np.ndarray, work: float
    ) -> RelaxationResult:
        misdp = self.misdp
        m = misdp.num_vars
        big = 1e6
        for _round in range(40):
            lp = LinearProgram()
            for i in range(m):
                lo = lb[i] if math.isfinite(lb[i]) else -big
                hi = ub[i] if math.isfinite(ub[i]) else big
                lp.add_variable(lo, hi, -float(misdp.b[i]))
            for row in misdp.linear_rows:
                lp.add_row(dict(row.coefs), row.lhs, row.rhs)
            for coefs, rhs in self._fallback_cuts:
                lp.add_row(coefs, rhs=rhs)
            # the solver's failover chain supplies numerical recovery and
            # deadline enforcement for the outer-approximation LPs too
            sol = solver.solve_lp_robust(lp)
            work += WORK_PER_LP_FALLBACK
            if sol.status is LPStatus.INFEASIBLE:
                return RelaxationResult(RelaxationStatus.INFEASIBLE, math.inf, None, work)
            if sol.status is not LPStatus.OPTIMAL:
                return RelaxationResult(RelaxationStatus.FAILED, -math.inf, None, work)
            y = sol.x[:m]
            if solver.budget.time_exceeded():
                # every LP optimum of the outer approximation is a valid
                # bound: stop tightening, keep what is proved
                bound = sol.objective + solver.model.obj_offset
                return RelaxationResult(RelaxationStatus.OPTIMAL, bound, y, work)
            added = 0
            for block in misdp.blocks:
                Z = block.evaluate(y)
                scale = max(1.0, float(np.abs(Z).max()))
                for lam, v in eig_pairs_below(Z, -1e-7 * scale)[:3]:
                    coefs: dict[int, float] = {}
                    for i, A in block.coefs.items():
                        c = float(v @ A @ v)
                        if abs(c) > 1e-12:
                            coefs[i] = c
                    if coefs:
                        self._fallback_cuts.append((coefs, float(v @ block.C @ v)))
                        added += 1
            if added == 0:
                bound = sol.objective + solver.model.obj_offset
                return RelaxationResult(RelaxationStatus.OPTIMAL, bound, y, work)
        # outer approximation not yet PSD-tight: the LP value is still a
        # valid bound; return the last iterate for branching
        bound = sol.objective + solver.model.obj_offset
        return RelaxationResult(RelaxationStatus.OPTIMAL, bound, y, work)
