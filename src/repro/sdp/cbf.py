"""CBF (Conic Benchmark Format) reader/writer for MISDPs.

CBLIB — the paper's Table 4 benchmark library — distributes instances in
CBF. This module supports the subset needed for mixed integer
semidefinite programs in the paper's dual form:

* ``VER`` (1-3), ``OBJSENSE``,
* ``VAR`` with ``F``/``L+``/``L-`` cones (bounds as variable cones),
* ``INT`` integer markers,
* ``CON`` scalar constraints with ``L+``/``L-``/``L=`` cones,
* ``PSDCON`` blocks with ``HCOORD``/``DCOORD`` entries, i.e. constraints
  ``sum_j H_j y_j + D >= 0`` (PSD), which map to our blocks via
  ``C = D`` and ``A_j = -H_j``,
* ``OBJACOORD``, ``ACOORD``, ``BCOORD``.

Only lower-triangular PSD coordinates are written (per the spec); the
reader symmetrises.
"""

from __future__ import annotations

import io
import math
from pathlib import Path

import numpy as np

from repro.exceptions import ModelError
from repro.sdp.model import MISDP

_SUPPORTED_VAR_CONES = {"F", "L+", "L-"}
_SUPPORTED_CON_CONES = {"L+", "L-", "L="}


def _tokens(text: str):
    """Yield logical lines: stripped, comment-free, non-empty."""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            yield line


def read_cbf(text: str, name: str = "cbf") -> MISDP:
    """Parse CBF text into an :class:`MISDP` (sup-form)."""
    lines = list(_tokens(text))
    pos = 0

    def next_line() -> str:
        nonlocal pos
        if pos >= len(lines):
            raise ModelError("unexpected end of CBF input")
        line = lines[pos]
        pos += 1
        return line

    objsense = 1  # +1 = MAX (our native form), -1 = MIN
    n_vars = 0
    var_cones: list[tuple[str, int]] = []
    integers: list[int] = []
    con_cones: list[tuple[str, int]] = []
    psd_dims: list[int] = []
    obj_coords: dict[int, float] = {}
    a_coords: list[tuple[int, int, float]] = []
    b_coords: dict[int, float] = {}
    h_coords: list[tuple[int, int, int, int, float]] = []
    d_coords: list[tuple[int, int, int, float]] = []

    while pos < len(lines):
        keyword = next_line().upper()
        if keyword == "VER":
            version = int(next_line())
            if version not in (1, 2, 3):
                raise ModelError(f"unsupported CBF version {version}")
        elif keyword == "OBJSENSE":
            sense = next_line().upper()
            if sense not in ("MIN", "MAX"):
                raise ModelError(f"bad OBJSENSE {sense!r}")
            objsense = 1 if sense == "MAX" else -1
        elif keyword == "VAR":
            n_vars, k = (int(t) for t in next_line().split())
            total = 0
            for _ in range(k):
                cone, dim = next_line().split()
                if cone not in _SUPPORTED_VAR_CONES:
                    raise ModelError(f"unsupported variable cone {cone!r}")
                var_cones.append((cone, int(dim)))
                total += int(dim)
            if total != n_vars:
                raise ModelError("VAR cone dimensions do not sum to the variable count")
        elif keyword == "INT":
            for _ in range(int(next_line())):
                integers.append(int(next_line()))
        elif keyword == "CON":
            _n_scalar, r = (int(t) for t in next_line().split())
            for _ in range(r):
                cone, dim = next_line().split()
                if cone not in _SUPPORTED_CON_CONES:
                    raise ModelError(f"unsupported constraint cone {cone!r}")
                con_cones.append((cone, int(dim)))
        elif keyword == "PSDCON":
            for _ in range(int(next_line())):
                psd_dims.append(int(next_line()))
        elif keyword == "OBJACOORD":
            for _ in range(int(next_line())):
                j, val = next_line().split()
                obj_coords[int(j)] = float(val)
        elif keyword == "OBJBCOORD":
            next_line()  # constant objective offset: ignored (documented)
        elif keyword == "ACOORD":
            for _ in range(int(next_line())):
                i, j, val = next_line().split()
                a_coords.append((int(i), int(j), float(val)))
        elif keyword == "BCOORD":
            for _ in range(int(next_line())):
                i, val = next_line().split()
                b_coords[int(i)] = float(val)
        elif keyword == "HCOORD":
            for _ in range(int(next_line())):
                blk, j, r, c, val = next_line().split()
                h_coords.append((int(blk), int(j), int(r), int(c), float(val)))
        elif keyword == "DCOORD":
            for _ in range(int(next_line())):
                blk, r, c, val = next_line().split()
                d_coords.append((int(blk), int(r), int(c), float(val)))
        else:
            raise ModelError(f"unsupported CBF section {keyword!r}")

    # variable bounds from variable cones
    lb = np.full(n_vars, -math.inf)
    ub = np.full(n_vars, math.inf)
    offset = 0
    for cone, dim in var_cones:
        for j in range(offset, offset + dim):
            if cone == "L+":
                lb[j] = 0.0
            elif cone == "L-":
                ub[j] = 0.0
        offset += dim

    b = np.zeros(n_vars)
    for j, val in obj_coords.items():
        b[j] = val * objsense  # normalise to sup-form
    misdp = MISDP(name, b, lb, ub, integers=sorted(set(integers)))

    # scalar rows: row i is  sum_j a_ij y_j + b_i  in cone
    row_cone: list[str] = []
    for cone, dim in con_cones:
        row_cone.extend([cone] * dim)
    rows_coefs: dict[int, dict[int, float]] = {}
    for i, j, val in a_coords:
        rows_coefs.setdefault(i, {})[j] = rows_coefs.setdefault(i, {}).get(j, 0.0) + val
    for i, cone in enumerate(row_cone):
        coefs = rows_coefs.get(i, {})
        const = b_coords.get(i, 0.0)
        if cone == "L+":  # a'y + b >= 0
            misdp.add_linear_row(coefs, lhs=-const)
        elif cone == "L-":
            misdp.add_linear_row(coefs, rhs=-const)
        else:
            misdp.add_linear_row(coefs, lhs=-const, rhs=-const)

    # PSD blocks: sum_j H_j y_j + D >= 0  ->  C = D, A_j = -H_j
    for bi, dim in enumerate(psd_dims):
        C = np.zeros((dim, dim))
        coefs: dict[int, np.ndarray] = {}
        for blk, r, c, val in d_coords:
            if blk == bi:
                C[r, c] = val
                C[c, r] = val
        for blk, j, r, c, val in h_coords:
            if blk != bi:
                continue
            A = coefs.setdefault(j, np.zeros((dim, dim)))
            A[r, c] = -val
            A[c, r] = -val
        misdp.add_block(C, coefs, f"psd{bi}")
    return misdp


def read_cbf_file(path: str | Path) -> MISDP:
    p = Path(path)
    return read_cbf(p.read_text(), name=p.stem)


def write_cbf(misdp: MISDP) -> str:
    """Serialize an MISDP in CBF version 1 (sup-form -> OBJSENSE MAX).

    Finite variable bounds other than ``y >= 0`` / ``y <= 0`` are emitted
    as scalar constraints (CBF has no general bound section).
    """
    buf = io.StringIO()
    buf.write("# written by repro.sdp.cbf\nVER\n1\n\nOBJSENSE\nMAX\n\n")
    m = misdp.num_vars
    # variable cones: exact zero-bounds map to L+/L-; everything else free
    cones: list[str] = []
    extra_rows: list[tuple[dict[int, float], float, str]] = []  # (coefs, const, cone)
    for j in range(m):
        lo, hi = misdp.lb[j], misdp.ub[j]
        if lo == 0.0 and math.isinf(hi):
            cones.append("L+")
        elif hi == 0.0 and math.isinf(lo):
            cones.append("L-")
        else:
            cones.append("F")
            if math.isfinite(lo):
                extra_rows.append(({j: 1.0}, -lo, "L+"))  # y - lo >= 0
            if math.isfinite(hi):
                extra_rows.append(({j: -1.0}, hi, "L+"))  # hi - y >= 0
    buf.write(f"VAR\n{m} {m}\n")
    for cone in cones:
        buf.write(f"{cone} 1\n")
    buf.write("\n")
    if misdp.integers:
        buf.write(f"INT\n{len(misdp.integers)}\n")
        for j in misdp.integers:
            buf.write(f"{j}\n")
        buf.write("\n")

    # scalar rows
    all_rows: list[tuple[dict[int, float], float, str]] = []
    for row in misdp.linear_rows:
        if row.lhs == row.rhs:
            all_rows.append((row.coefs, -row.lhs, "L="))
        else:
            if math.isfinite(row.lhs):
                all_rows.append((row.coefs, -row.lhs, "L+"))
            if math.isfinite(row.rhs):
                all_rows.append(({k: -v for k, v in row.coefs.items()}, row.rhs, "L+"))
    all_rows.extend(extra_rows)
    if all_rows:
        buf.write(f"CON\n{len(all_rows)} {len(all_rows)}\n")
        for _c, _b, cone in all_rows:
            buf.write(f"{cone} 1\n")
        buf.write("\n")

    if misdp.blocks:
        buf.write(f"PSDCON\n{len(misdp.blocks)}\n")
        for block in misdp.blocks:
            buf.write(f"{block.size}\n")
        buf.write("\n")

    obj = [(j, misdp.b[j]) for j in range(m) if misdp.b[j] != 0.0]
    if obj:
        buf.write(f"OBJACOORD\n{len(obj)}\n")
        for j, val in obj:
            buf.write(f"{j} {float(val)!r}\n")
        buf.write("\n")

    a_entries = [
        (i, j, val)
        for i, (coefs, _b, _c) in enumerate(all_rows)
        for j, val in sorted(coefs.items())
        if val != 0.0
    ]
    if a_entries:
        buf.write(f"ACOORD\n{len(a_entries)}\n")
        for i, j, val in a_entries:
            buf.write(f"{i} {j} {float(val)!r}\n")
        buf.write("\n")
    b_entries = [(i, bval) for i, (_c, bval, _k) in enumerate(all_rows) if bval != 0.0]
    if b_entries:
        buf.write(f"BCOORD\n{len(b_entries)}\n")
        for i, val in b_entries:
            buf.write(f"{i} {float(val)!r}\n")
        buf.write("\n")

    h_entries = []
    d_entries = []
    for bi, block in enumerate(misdp.blocks):
        for j, A in sorted(block.coefs.items()):
            for r in range(block.size):
                for c in range(r + 1):
                    if A[r, c] != 0.0:
                        h_entries.append((bi, j, r, c, -A[r, c]))
        for r in range(block.size):
            for c in range(r + 1):
                if block.C[r, c] != 0.0:
                    d_entries.append((bi, r, c, block.C[r, c]))
    if h_entries:
        buf.write(f"HCOORD\n{len(h_entries)}\n")
        for blk, j, r, c, val in h_entries:
            buf.write(f"{blk} {j} {r} {c} {float(val)!r}\n")
        buf.write("\n")
    if d_entries:
        buf.write(f"DCOORD\n{len(d_entries)}\n")
        for blk, r, c, val in d_entries:
            buf.write(f"{blk} {r} {c} {float(val)!r}\n")
        buf.write("\n")
    return buf.getvalue()
