"""Mixed integer semidefinite programming — the SCIP-SDP analogue.

Implements both solution approaches of the paper's §3.2:

* the **LP-based cutting-plane approach** using Sherali–Fraticelli
  eigenvector cuts (:mod:`repro.sdp.eigcuts`) inside the CIP
  branch-and-cut loop, and
* **nonlinear branch-and-bound**, solving a continuous SDP relaxation at
  every node (:mod:`repro.sdp.relaxator`) through the ADMM solver in
  :mod:`repro.sdp.admm` — the stand-in for the interior-point solvers
  (Mosek) the paper interfaces — with a penalty formulation for
  relaxations violating the Slater condition (:mod:`repro.sdp.admm`).

ug[MISDP,*] exploits racing ramp-up to run LP-based and SDP-based solver
instances side by side (settings interleave in
:mod:`repro.apps.misdp_plugins`), dynamically choosing the better
relaxation per instance — the hybrid the paper highlights.
"""

from repro.sdp.model import MISDP, SDPBlock, LinearRow
from repro.sdp.solver import MISDPSolver, MISDPSolution
from repro.sdp.instances import (
    cardinality_least_squares,
    cblib_collection,
    min_k_partitioning,
    truss_topology_design,
)

__all__ = [
    "MISDP",
    "SDPBlock",
    "LinearRow",
    "MISDPSolver",
    "MISDPSolution",
    "truss_topology_design",
    "cardinality_least_squares",
    "min_k_partitioning",
    "cblib_collection",
]
