"""MISDP model container — problem (8) of the paper.

    sup  b'y
    s.t. C_k - sum_i A_ki y_i  >= 0   (PSD, per block k)
         lhs <= a'y <= rhs            (linear rows)
         l <= y <= u,  y_i integer for i in I

Internally the CIP layer minimises, so the model also provides the
negated view; reported objective values are in the original (sup) sense.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ModelError


@dataclass
class SDPBlock:
    """One PSD constraint ``C - sum_i A[i] y_i >= 0``.

    ``coefs`` maps variable index -> symmetric matrix A_i (absent
    variables do not appear in the block).
    """

    C: np.ndarray
    coefs: dict[int, np.ndarray]
    name: str = ""

    def __post_init__(self) -> None:
        self.C = np.asarray(self.C, dtype=float)
        n = self.C.shape[0]
        if self.C.shape != (n, n) or not np.allclose(self.C, self.C.T, atol=1e-9):
            raise ModelError(f"block {self.name!r}: C must be symmetric square")
        for i, A in list(self.coefs.items()):
            A = np.asarray(A, dtype=float)
            if A.shape != (n, n) or not np.allclose(A, A.T, atol=1e-9):
                raise ModelError(f"block {self.name!r}: A[{i}] must be symmetric {n}x{n}")
            self.coefs[i] = A

    @property
    def size(self) -> int:
        return self.C.shape[0]

    def evaluate(self, y: np.ndarray) -> np.ndarray:
        """The slack matrix ``Z(y) = C - sum A_i y_i``."""
        Z = self.C.copy()
        for i, A in self.coefs.items():
            Z -= A * float(y[i])
        return Z


@dataclass
class LinearRow:
    """``lhs <= coefs . y <= rhs``."""

    coefs: dict[int, float]
    lhs: float
    rhs: float
    name: str = ""


@dataclass
class MISDP:
    """A mixed integer semidefinite program in the paper's dual form."""

    name: str = "misdp"
    b: np.ndarray = field(default_factory=lambda: np.zeros(0))  # maximise b'y
    lb: np.ndarray = field(default_factory=lambda: np.zeros(0))
    ub: np.ndarray = field(default_factory=lambda: np.zeros(0))
    integers: list[int] = field(default_factory=list)
    blocks: list[SDPBlock] = field(default_factory=list)
    linear_rows: list[LinearRow] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.b = np.asarray(self.b, dtype=float)
        self.lb = np.asarray(self.lb, dtype=float)
        self.ub = np.asarray(self.ub, dtype=float)
        m = len(self.b)
        if len(self.lb) != m or len(self.ub) != m:
            raise ModelError("b, lb, ub must have equal length")
        if np.any(self.lb > self.ub):
            raise ModelError("lb > ub for some variable")
        for i in self.integers:
            if not 0 <= i < m:
                raise ModelError(f"integer index {i} out of range")

    @property
    def num_vars(self) -> int:
        return len(self.b)

    def add_block(self, C: np.ndarray, coefs: dict[int, np.ndarray], name: str = "") -> SDPBlock:
        block = SDPBlock(np.asarray(C, dtype=float), dict(coefs), name)
        for i in block.coefs:
            if not 0 <= i < self.num_vars:
                raise ModelError(f"block {name!r} references unknown variable {i}")
        self.blocks.append(block)
        return block

    def add_linear_row(
        self, coefs: dict[int, float], lhs: float = -math.inf, rhs: float = math.inf, name: str = ""
    ) -> LinearRow:
        if lhs > rhs:
            raise ModelError(f"row {name!r}: lhs > rhs")
        row = LinearRow(dict(coefs), float(lhs), float(rhs), name)
        self.linear_rows.append(row)
        return row

    def objective(self, y: np.ndarray) -> float:
        """The (sup-sense) objective value b'y."""
        return float(self.b @ np.asarray(y, dtype=float))

    def is_feasible(self, y: np.ndarray, tol: float = 1e-6) -> bool:
        """Check bounds, linear rows, integrality and PSD blocks at ``y``."""
        y = np.asarray(y, dtype=float)
        if np.any(y < self.lb - tol) or np.any(y > self.ub + tol):
            return False
        for i in self.integers:
            if abs(y[i] - round(y[i])) > tol:
                return False
        for row in self.linear_rows:
            act = sum(c * y[j] for j, c in row.coefs.items())
            if act < row.lhs - tol or act > row.rhs + tol:
                return False
        for block in self.blocks:
            Z = block.evaluate(y)
            eigmin = float(np.linalg.eigvalsh(Z)[0])
            if eigmin < -tol * max(1.0, float(np.abs(Z).max())):
                return False
        return True
