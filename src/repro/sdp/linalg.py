"""Symmetric-matrix helpers for the SDP machinery."""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla


def min_eig(M: np.ndarray) -> tuple[float, np.ndarray]:
    """Smallest eigenvalue and a corresponding unit eigenvector."""
    vals, vecs = sla.eigh(np.asarray(M, dtype=float))
    return float(vals[0]), vecs[:, 0]


def eig_pairs_below(M: np.ndarray, threshold: float) -> list[tuple[float, np.ndarray]]:
    """All (eigenvalue, eigenvector) pairs with eigenvalue < threshold."""
    vals, vecs = sla.eigh(np.asarray(M, dtype=float))
    return [(float(vals[i]), vecs[:, i]) for i in range(len(vals)) if vals[i] < threshold]


def project_psd(M: np.ndarray) -> np.ndarray:
    """Euclidean projection onto the PSD cone (eigenvalue clipping)."""
    M = np.asarray(M, dtype=float)
    if M.shape == (1, 1):
        return np.maximum(M, 0.0)
    vals, vecs = sla.eigh(M)
    if vals[0] >= 0.0:
        return M
    pos = vals > 0.0
    if not np.any(pos):
        return np.zeros_like(M)
    V = vecs[:, pos]
    return (V * vals[pos]) @ V.T


def sym(M: np.ndarray) -> np.ndarray:
    """Symmetrize (numerical hygiene after accumulated updates)."""
    return 0.5 * (M + M.T)
