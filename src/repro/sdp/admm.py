"""ADMM solver for the continuous SDP relaxation.

Solves (the continuous relaxation of) the paper's problem (8),

    max b'y   s.t.   A_k(y) + S_k = C_k,  S_k >= 0 (PSD)

with variable bounds and linear rows absorbed as *scalar* cone
constraints, via the classical two-block ADMM: a least-squares step in
``y`` (Gram matrix factorised once), a PSD projection step per matrix
block, a vectorised nonnegativity projection for all scalar constraints,
and a dual update on the multipliers.

This is the stand-in for interior-point SDP solvers (Mosek in the
paper): at the block sizes of our instances it reliably reaches 1e-6
residuals. When a node relaxation violates the Slater condition (after
aggressive branching) the *penalty formulation* of SCIP-SDP is applied:
``max b'y - Gamma r  s.t.  C - A(y) + r I >= 0, r >= 0`` — a positive
optimal ``r`` certifies infeasibility of the node (for large Gamma).

Performance note (per the HPC guides): the scalar constraints — bounds
and linear rows, by far the most numerous — are handled as dense numpy
vectors, so each iteration costs a handful of BLAS calls plus one small
``eigh`` per genuine PSD block.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla

from repro.exceptions import SDPError
from repro.sdp.linalg import project_psd, sym
from repro.sdp.model import MISDP

_BIG_BOUND = 1e6


@dataclass
class SDPResult:
    """Outcome of an SDP relaxation solve."""

    status: str  # "optimal" | "infeasible" | "failed" | "time_limit"
    objective: float  # b'y (sup sense)
    y: np.ndarray | None
    iterations: int
    primal_residual: float
    dual_residual: float

    @property
    def safe_upper_bound(self) -> float:
        """Objective plus a residual-proportional safety margin.

        ADMM is a first-order method; the margin keeps the value usable
        as a bounding (over-)estimate in branch-and-bound.
        """
        if self.y is None:
            return math.inf
        scale = max(1.0, abs(self.objective))
        return self.objective + 10.0 * scale * (self.primal_residual + self.dual_residual) + 1e-6


@dataclass
class _MatBlock:
    C: np.ndarray
    vars: list[int]
    mats: np.ndarray  # stacked (k, n, n)


def _build_scalar_system(
    misdp: MISDP, lb: np.ndarray, ub: np.ndarray, n_y: int, penalty: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Rows (a, c) of all scalar constraints ``c - a.y >= 0``."""
    m = misdp.num_vars
    rows: list[np.ndarray] = []
    consts: list[float] = []

    def add(coefs: dict[int, float], const: float) -> None:
        a = np.zeros(n_y)
        for i, v in coefs.items():
            a[i] = v
        rows.append(a)
        consts.append(const)

    for i in range(m):
        if math.isfinite(lb[i]):
            add({i: -1.0}, -lb[i])  # y_i >= lb
        if math.isfinite(ub[i]):
            add({i: 1.0}, ub[i])  # y_i <= ub
    for row in misdp.linear_rows:
        if math.isfinite(row.rhs):
            add(dict(row.coefs), row.rhs)
        if math.isfinite(row.lhs):
            add({i: -v for i, v in row.coefs.items()}, -row.lhs)
    if penalty:
        add({m: -1.0}, 0.0)  # r >= 0
        add({m: 1.0}, _BIG_BOUND)  # r bounded
    if not rows:
        return np.zeros((0, n_y)), np.zeros(0)
    return np.vstack(rows), np.asarray(consts)


def solve_sdp_relaxation(
    misdp: MISDP,
    lb: np.ndarray | None = None,
    ub: np.ndarray | None = None,
    rho: float = 1.0,
    max_iter: int = 4000,
    tol: float = 1e-7,
    penalty: bool = False,
    penalty_gamma: float = 1e4,
    over_relaxation: float = 1.6,
    budget=None,
) -> SDPResult:
    """Solve the continuous relaxation under (possibly tightened) bounds.

    Infinite bounds are replaced by +-1e6 box bounds so the y-step stays
    well-posed (documented substitution for interior-point regularity).
    ``budget`` (duck-typed :class:`repro.utils.budget.Budget`) is checked
    every iteration; an expired deadline returns ``"time_limit"`` within
    one ADMM iteration instead of running to ``max_iter``.
    """
    m = misdp.num_vars
    lb = misdp.lb if lb is None else np.asarray(lb, dtype=float)
    ub = misdp.ub if ub is None else np.asarray(ub, dtype=float)
    lb = np.maximum(lb, -_BIG_BOUND)
    ub = np.minimum(ub, _BIG_BOUND)
    if np.any(lb > ub + 1e-12):
        return SDPResult("infeasible", -math.inf, None, 0, 0.0, 0.0)

    n_y = m + (1 if penalty else 0)
    # Penalty mode solves the *feasibility* problem min r subject to
    # C - A(y) + r I >= 0: a positive optimum certifies infeasibility.
    # (Using b - Gamma r directly wrecks ADMM's scaling; the bounding role
    # is covered by the caller's LP fallback.)
    b = (
        np.concatenate([np.zeros(m), [-1.0]])
        if penalty
        else misdp.b.astype(float)
    )

    # Each constraint is scaled by its own data norm (diagonal
    # preconditioning): mathematically equivalent, but ADMM convergence is
    # dramatically better on badly scaled blocks (e.g. truss compliance).
    blocks: list[_MatBlock] = []
    for blk in misdp.blocks:
        vars_ = sorted(blk.coefs)
        mats = [blk.coefs[i] for i in vars_]
        if penalty:
            vars_ = vars_ + [m]
            mats = mats + [-np.eye(blk.size)]
        stacked = np.stack(mats)
        scale = max(1.0, float(np.linalg.norm(blk.C)), float(np.abs(stacked).max()))
        blocks.append(_MatBlock(blk.C / scale, vars_, stacked / scale))
    A_s, c_s = _build_scalar_system(misdp, lb, ub, n_y, penalty)
    if len(c_s):
        row_scale = np.maximum(1.0, np.maximum(np.abs(c_s), np.abs(A_s).max(axis=1)))
        A_s = A_s / row_scale[:, None]
        c_s = c_s / row_scale

    # Gram matrix G_ij = sum_k <A_ki, A_kj> over matrix blocks + scalar rows
    G = A_s.T @ A_s
    for blk in blocks:
        flat = blk.mats.reshape(len(blk.vars), -1)
        local = flat @ flat.T
        idx = np.asarray(blk.vars)
        G[np.ix_(idx, idx)] += local
    G = G + 1e-10 * np.eye(n_y)
    try:
        G_chol = sla.cho_factor(G)
    except sla.LinAlgError as exc:
        raise SDPError(f"singular Gram matrix: {exc}") from exc

    y = np.zeros(n_y)
    S = [project_psd(blk.C) for blk in blocks]
    X = [np.zeros_like(blk.C) for blk in blocks]
    s_vec = np.maximum(c_s, 0.0)
    x_vec = np.zeros(len(c_s))

    # relative stopping (Boyd et al.): residuals are compared against the
    # scale of the iterates/data, not absolutely
    data_scale = max(
        1.0,
        float(np.linalg.norm(c_s)) if len(c_s) else 0.0,
        max((float(np.linalg.norm(blk.C)) for blk in blocks), default=0.0),
    )
    prim_res = dual_res = math.inf
    it = 0
    timed_out = False
    for it in range(1, max_iter + 1):
        if budget is not None and budget.time_exceeded():
            timed_out = True
            break
        # y-step: rho G y = b + rho A'(c - s - x/rho) summed over cones
        rhs = b.copy()
        if len(c_s):
            rhs += rho * (A_s.T @ (c_s - s_vec - x_vec / rho))
        for blk, Sk, Xk in zip(blocks, S, X):
            Mk = blk.C - Sk - Xk / rho
            rhs[blk.vars] += rho * blk.mats.reshape(len(blk.vars), -1) @ Mk.ravel()
        y = sla.cho_solve(G_chol, rhs / rho)

        prim_sq = 0.0
        dual_sq = 0.0
        alpha = over_relaxation
        # scalar cones, fully vectorised (with standard over-relaxation)
        if len(c_s):
            act = A_s @ y
            prim_sq += float(np.sum((act + s_vec - c_s) ** 2))
            act_rel = alpha * act + (1.0 - alpha) * (c_s - s_vec)
            s_new = np.maximum(c_s - act_rel - x_vec / rho, 0.0)
            dual_sq += float(np.sum((s_new - s_vec) ** 2))
            s_vec = s_new
            x_vec = x_vec + rho * (act_rel + s_vec - c_s)
        # matrix blocks
        for k, blk in enumerate(blocks):
            Ay = np.tensordot(y[blk.vars], blk.mats, axes=1)
            prim_sq += float(np.sum((Ay + S[k] - blk.C) ** 2))
            Ay_rel = alpha * Ay + (1.0 - alpha) * (blk.C - S[k])
            S_new = project_psd(sym(blk.C - Ay_rel - X[k] / rho))
            dual_sq += float(np.sum((S_new - S[k]) ** 2))
            S[k] = S_new
            X[k] = sym(X[k] + rho * (Ay_rel + S[k] - blk.C))
        prim_res = math.sqrt(prim_sq) / data_scale
        dual_res = rho * math.sqrt(dual_sq) / data_scale
        if prim_res < tol and dual_res < tol:
            break
        if it % 100 == 0:  # standard residual balancing
            if prim_res > 10 * dual_res:
                rho *= 2.0
                X = [Xk / 2.0 for Xk in X]
                x_vec = x_vec / 2.0
            elif dual_res > 10 * prim_res:
                rho /= 2.0
                X = [Xk * 2.0 for Xk in X]
                x_vec = x_vec * 2.0

    converged = prim_res < 1e-5 and dual_res < 1e-4
    obj = float(b @ y)
    if timed_out and not converged:
        return SDPResult("time_limit", obj, None, it, prim_res, dual_res)
    if not converged and over_relaxation != 1.0:
        # over-relaxation (alpha = 1.6) accelerates well-conditioned
        # solves but can cycle with residuals stuck around 1e-3 on some
        # instances; restart damped (alpha = 1) before reporting failure
        fallback = solve_sdp_relaxation(
            misdp,
            lb,
            ub,
            max_iter=max_iter,
            tol=tol,
            penalty=penalty,
            penalty_gamma=penalty_gamma,
            over_relaxation=1.0,
            budget=budget,
        )
        fallback.iterations += it
        return fallback
    if penalty:
        r = float(y[m])
        if converged and r > 1e-5:
            return SDPResult("infeasible", -math.inf, None, it, prim_res, dual_res)
        if not converged:
            return SDPResult("failed", obj, None, it, prim_res, dual_res)
        # feasible: r ~ 0; the y part is a feasible point, not an optimum
        return SDPResult("optimal", float(misdp.b @ y[:m]), y[:m].copy(), it, prim_res, dual_res)
    if not converged:
        return SDPResult("failed", obj, None, it, prim_res, dual_res)
    return SDPResult("optimal", obj, y.copy(), it, prim_res, dual_res)
