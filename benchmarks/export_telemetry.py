"""Export a traced ug[SteinerJack, SimMPI] run as CI telemetry artifacts.

Runs one small deterministic SimEngine solve with tracing enabled and
writes, into ``$BENCH_OUTPUT_DIR`` (or the working directory):

* ``trace.jsonl`` — the canonical JSONL event stream (bit-identical for
  the same seed under the SimEngine; the determinism contract is tested
  in ``tests/test_ug_obs.py``),
* ``BENCH_telemetry.json`` — run statistics, per-rank busy/idle
  timelines and tracer health (event count, ring-buffer drops).

Usage::

    PYTHONPATH=src python benchmarks/export_telemetry.py
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.obs.metrics import busy_timelines, timeline_idle_ratios
from repro.obs.reporters import write_bench_json
from repro.steiner.instances import hypercube_instance
from repro.apps.stp_plugins import SteinerUserPlugins
from repro.ug import ug
from repro.ug.config import UGConfig


def export(directory: str | None = None) -> Path:
    base = Path(directory if directory is not None else os.environ.get("BENCH_OUTPUT_DIR", "."))
    base.mkdir(parents=True, exist_ok=True)

    graph = hypercube_instance(4, perturbed=False, seed=1)
    config = UGConfig(time_limit=1e9, objective_epsilon=1 - 1e-6, trace_enabled=True)
    result = ug(graph, SteinerUserPlugins(), n_solvers=4, comm="sim",
                config=config, seed=0).run()
    tracer = result.trace
    assert tracer is not None and tracer.enabled

    trace_path = base / "trace.jsonl"
    tracer.dump(trace_path)

    timelines = busy_timelines(tracer.events())
    span = result.stats.computing_time
    write_bench_json(
        "telemetry",
        {
            "solver": result.name,
            "solved": result.solved,
            "objective": result.objective,
            "stats": result.stats,
            "trace_events": len(tracer.events()),
            "trace_dropped": tracer.dropped,
            "idle_by_rank": timeline_idle_ratios(timelines, span, ranks=range(1, 5)),
        },
        directory=base,
    )
    print(f"[telemetry] wrote {trace_path} ({len(tracer.events())} events)")
    return trace_path


if __name__ == "__main__":
    export()
