"""Table 1 — shared-memory ug[SteinerJack, *] scaling on PUC-style instances.

Paper shape to reproduce (§4.1, Table 1): solve times for five PUC
instances at 1..64 threads; the root-dominated instance (cc3-4p) barely
scales and caps its active-solver count early, while the branching-heavy
hypercube instances keep all solvers busy and scale until saturation.
Also reports root time, max # solvers and first-max-active time, exactly
like the paper's lower panel. Thread counts are scaled to 1..16 for the
smaller instances (DESIGN.md §4).
"""

from __future__ import annotations

import pytest

from benchmarks.common import emit_bench_json, run_steiner_ug, table1_instances
from repro.obs.reporters import scaling_report

THREAD_COUNTS = [1, 2, 4, 8, 16]


def _run_table1() -> dict:
    instances = table1_instances()
    results: dict[str, dict] = {}
    for name, graph in instances:
        per_n = {}
        meta = {}
        for n in THREAD_COUNTS:
            res = run_steiner_ug(graph, n, seed=0)
            st = res.stats
            per_n[n] = st.computing_time
            meta = {
                "root_time": st.root_time,
                "max_solvers": st.max_active_solvers,
                "first_max_active": st.first_max_active_time,
                "objective": res.objective,
                "solved": res.solved,
            }
        results[name] = {"times": per_n, **meta}
    return results


@pytest.mark.benchmark(group="table1")
def test_table1_stp_shared_memory(benchmark):
    results = benchmark.pedantic(_run_table1, rounds=1, iterations=1)

    names = list(results)
    report = scaling_report(
        "Table 1 analogue: shared-memory Steiner scaling (virtual seconds)",
        results,
        THREAD_COUNTS,
    )
    print(report.render())
    emit_bench_json("table1", {"report": report, "results": results})

    for name in names:
        assert results[name]["solved"], f"{name} did not solve"
        times = results[name]["times"]
        # paper shape: using all solvers never loses badly to one solver...
        assert times[max(THREAD_COUNTS)] <= times[1] * 1.6 + 0.2
    # ...and the branching-heavy instance genuinely gains from parallelism
    hc = results["hc5u"]["times"]
    assert hc[max(THREAD_COUNTS)] < hc[1]
    # the root-dominated instance cannot use many solvers (cc3-4p shape)
    assert results["cc3-4p"]["max_solvers"] <= 8
