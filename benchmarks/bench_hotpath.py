"""Hot-path kernel micro-benchmarks: the numpy-first rewrites of PR 7.

Engine-overhead profiling showed three kernels dominating solver step
time: Dijkstra/Voronoi relaxation (``steiner.shortest_paths``), Wong's
dual ascent (``steiner.dual_ascent``) and the bounded-variable simplex
(``lp.simplex``), plus the bottleneck Steiner distance used by the SD
edge-deletion test.  Each is timed on a fixed, deterministic workload and
reports a checksum so a speed-up that changes answers is caught here
before the differential oracles would flag it.

Emits ``BENCH_hotpath.json`` for CI trend tracking.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.common import emit_bench_json, print_table, table1_instances
from repro.lp import LinearProgram
from repro.lp.simplex import solve_with_simplex
from repro.steiner.dual_ascent import dual_ascent
from repro.steiner.shortest_paths import (
    bottleneck_steiner_distance,
    dijkstra,
    voronoi,
)
from repro.steiner.transformations import spg_to_sap
from repro.utils import make_rng


def _bench_dijkstra(graph) -> float:
    """Single-source passes from every terminal plus one Voronoi sweep."""
    acc = 0.0
    for t in graph.terminals:
        dist, _pred = dijkstra(graph, int(t))
        acc += float(dist[np.isfinite(dist)].sum())
    vor = voronoi(graph)
    acc += float(vor.dist[np.isfinite(vor.dist)].sum())
    return acc


def _bench_dual_ascent(graph) -> float:
    res = dual_ascent(spg_to_sap(graph))
    return float(res.lower_bound) + float(res.reduced_costs.sum())


def _bench_bottleneck(graph) -> float:
    acc = 0.0
    limit = 12.0 * max(e.cost for e in graph.edges)
    for v in list(graph.alive_vertices())[:24]:
        sd = bottleneck_steiner_distance(graph, int(v), limit)
        acc += sum(sd.values())
    return acc


def _make_lp(seed: int, m: int = 40, n: int = 70) -> LinearProgram:
    rng = make_rng(seed)
    lp = LinearProgram()
    for _ in range(n):
        lp.add_variable(0.0, float(rng.uniform(1.0, 5.0)), float(rng.normal()))
    for _ in range(m):
        idx = rng.choice(n, size=8, replace=False)
        coefs = {int(j): float(rng.uniform(-1.0, 2.0)) for j in idx}
        lp.add_row(coefs, lhs=-float(rng.uniform(0.5, 4.0)), rhs=float(rng.uniform(1.0, 6.0)))
    return lp


def _bench_simplex() -> float:
    acc = 0.0
    for seed in range(6):
        sol = solve_with_simplex(_make_lp(seed))
        if np.isfinite(sol.objective):
            acc += sol.objective
    return acc


def _measure() -> list[dict]:
    _name, graph = table1_instances()[-1]  # hc5u-d15, same as engine bench
    kernels = [
        ("dijkstra_voronoi", lambda: _bench_dijkstra(graph), 5),
        ("dual_ascent", lambda: _bench_dual_ascent(graph), 5),
        ("bottleneck_sd", lambda: _bench_bottleneck(graph), 3),
        ("simplex", _bench_simplex, 3),
    ]
    rows: list[dict] = []
    for name, fn, reps in kernels:
        fn()  # warm caches (CSR build, LAPACK load) outside the timing
        t0 = time.perf_counter()
        checksum = 0.0
        for _ in range(reps):
            checksum = fn()
        wall = time.perf_counter() - t0
        rows.append(
            {
                "kernel": name,
                "reps": reps,
                "wall_seconds": round(wall, 4),
                "per_call_ms": round(1000.0 * wall / reps, 3),
                "checksum": round(checksum, 6),
            }
        )
    return rows


@pytest.mark.benchmark(group="hotpath")
def test_hotpath_kernels(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    assert len(rows) >= 3
    print_table(
        "Hot-path kernels (per call)",
        ["kernel", "reps", "wall s", "ms/call", "checksum"],
        [[r["kernel"], r["reps"], r["wall_seconds"], r["per_call_ms"], r["checksum"]] for r in rows],
    )
    emit_bench_json("hotpath", {"rows": rows})


if __name__ == "__main__":  # pragma: no cover - manual runs
    for row in _measure():
        print(row)
    emit_bench_json("hotpath", {"rows": _measure()})
