"""Table 4 — ug[MISDP, C++11] vs sequential SCIP-SDP over the CBLIB suite.

Paper shape to reproduce (§4.2, Table 4): per family (TTD / CLS / Mk-P)
and overall, the number of solved instances and the shifted geometric
mean (shift 10) of solve times for the sequential solver and the
UG-parallelized solver at 1..32 threads. The shapes that must hold:

* 1-thread ug is *slower* than the sequential base solver
  (parallelization overhead),
* CLS gains dramatically at 2 threads (the first LP-based setting enters
  the racing portfolio — these instances prefer the LP approach),
* Mk-P profits least (the paper's SDP-bound combinatorial family),
* overall the parallel solver overtakes the sequential one at moderate
  thread counts.

Sequential and simulated-parallel times are both measured in the
deterministic work-unit model (virtual seconds), so they are directly
comparable.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import emit_bench_json, print_table
from repro.apps.misdp_plugins import MISDPUserPlugins
from repro.cip.params import ParamSet
from repro.sdp.instances import cblib_collection
from repro.sdp.solver import MISDPSolver
from repro.ug import ug
from repro.ug.config import UGConfig
from repro.utils import shifted_geometric_mean
from repro.verify import check_misdp_result, check_misdp_solution

THREAD_COUNTS = [1, 2, 4, 8]
TIME_BUDGET = 6.0  # virtual seconds per instance
NODE_BUDGET = 250
FAMILIES = ("TTD", "CLS", "Mk-P")


def _sequential_run(misdp) -> tuple[bool, float]:
    solver = MISDPSolver(misdp, approach="sdp", seed=0)
    sol = solver.solve(node_limit=NODE_BUDGET, time_limit=600)
    check_misdp_result(misdp, sol).raise_if_failed()
    solved = sol.status.value in ("optimal", "gap_limit")
    time = min(sol.stats.total_work, TIME_BUDGET) if sol.stats else TIME_BUDGET
    return solved, (time if solved else TIME_BUDGET)


def _parallel_run(misdp, n: int) -> tuple[bool, float]:
    cfg = UGConfig(
        ramp_up="racing" if n >= 2 else "normal",
        racing_deadline=0.05,
        racing_open_node_threshold=25,
        time_limit=TIME_BUDGET,
    )
    solver = ug(misdp, MISDPUserPlugins(), n_solvers=n, comm="sim",
                params=ParamSet(), config=cfg, seed=0, wall_clock_limit=60.0)
    res = solver.run()
    if res.incumbent is not None and res.incumbent.payload is not None:
        # incumbents ship the raw y vector: re-check feasibility by a
        # fresh eigenvalue computation and recompute the objective (the
        # UG layer minimises -b'y, so negate back to the sup sense)
        check_misdp_solution(
            misdp, np.asarray(res.incumbent.payload, dtype=float),
            claimed_value=-res.incumbent.value,
        ).raise_if_failed()
    return res.solved, (res.stats.computing_time if res.solved else TIME_BUDGET)


def _run_table4() -> dict:
    suite = cblib_collection(n_ttd=3, n_cls=3, n_mkp=3, seed=0)
    rows: dict[str, dict] = {}

    def aggregate(results: list[tuple[str, bool, float]]) -> dict:
        agg: dict[str, tuple[int, float]] = {}
        for fam in FAMILIES + ("Total",):
            sub = [r for r in results if fam == "Total" or r[0] == fam]
            solved = sum(1 for _f, s, _t in sub if s)
            times = [t for _f, _s, t in sub]
            agg[fam] = (solved, shifted_geometric_mean(times))
        return agg

    seq_results = []
    for fam, name, misdp in suite:
        solved, t = _sequential_run(misdp)
        seq_results.append((fam, solved, t))
    rows["SCIP-SDP (seq)"] = aggregate(seq_results)

    for n in THREAD_COUNTS:
        par_results = []
        for fam, name, misdp in suite:
            solved, t = _parallel_run(misdp, n)
            par_results.append((fam, solved, t))
        rows[f"ug[MISDP] {n} thr."] = aggregate(par_results)
    return rows


@pytest.mark.benchmark(group="table4")
def test_table4_sdp_cblib(benchmark):
    rows = benchmark.pedantic(_run_table4, rounds=1, iterations=1)
    header = ["solver"]
    for fam in FAMILIES + ("Total",):
        header += [f"{fam} solved", f"{fam} time"]
    table = []
    for solver_name, agg in rows.items():
        row = [solver_name]
        for fam in FAMILIES + ("Total",):
            solved, t = agg[fam]
            row += [solved, t]
        table.append(row)
    print_table("Table 4 analogue: CBLIB suite (9 instances, shifted geomean times)", header, table)
    emit_bench_json("table4", {"header": header, "rows": table, "aggregates": rows})

    seq = rows["SCIP-SDP (seq)"]
    one = rows["ug[MISDP] 1 thr."]
    best_parallel_time = min(agg["Total"][1] for name, agg in rows.items() if name != "SCIP-SDP (seq)")
    # shape 1: single-threaded ug does not beat the sequential solver
    assert one["Total"][1] >= seq["Total"][1] * 0.9
    # shape 2: some parallel configuration beats single-threaded ug clearly
    assert best_parallel_time < one["Total"][1]
    # shape 3: everything still gets solved at the largest thread count
    assert rows[f"ug[MISDP] {THREAD_COUNTS[-1]} thr."]["Total"][0] >= seq["Total"][0] - 1
