"""Modern-kernel ablation: conflict analysis + orbital fixing + restarts.

Solves the single-commodity flow MIP (:mod:`repro.steiner.milp`) of
small STP instances twice — features off (classical ParamSet) vs the
``modern`` emphasis preset — and reports the per-family median ratio of
branch-and-bound nodes.  The headline series is the parity-terminal
3-cube, whose coordinate-permutation automorphisms survive into the flow
formulation: orbital fixing plus learned conflicts must cut the node
count at least in half (the gate in ``check_regression.py`` holds the
median ratio at <= 0.5).  The breadth families (orlib_random, pace,
grid_holes) carry no such symmetry and are reported unaggregated —
they exist so the preset is exercised on asymmetric shapes too.

Every feature-on solve is audited (``audit_cip_trace``) and its tree
certificate-checked (``check_steiner_tree``) before a row is written —
a node-count win from an unsound reduction must never become a baseline.
One extra run forces an in-solve restart (``restart_min_nodes=10``,
``restart_node_factor=1.5``) and requires the audit's
``restart_accounting`` check to pass across the tree reset.
"""

from __future__ import annotations

import statistics
import time

import pytest

from benchmarks.common import emit_bench_json, print_table
from repro.cip.mip import make_mip_solver
from repro.cip.params import ParamSet, emphasis
from repro.instances import generate_family
from repro.instances.stp import hypercube
from repro.obs.trace import Tracer
from repro.steiner.milp import stp_flow_mip
from repro.verify import audit_cip_trace
from repro.verify.differential import brute_force_steiner
from repro.verify.steiner import check_steiner_tree

PERMUTATION_SEEDS = (0, 1, 2, 3, 4)

BREADTH_CONFIGS: tuple[tuple[str, dict], ...] = (
    ("orlib_random", {"n": 8, "m": 13, "n_terminals": 3}),
    ("pace", {"n": 9, "n_chords": 4, "n_terminals": 4}),
    ("grid_holes", {"rows": 2, "cols": 4, "n_holes": 1, "n_terminals": 3}),
)


def traced_flow_solve(graph, params):
    """Flow-MIP solve with a tracer attached; returns (result, edges, tracer)."""
    fm = stp_flow_mip(graph)
    solver = make_mip_solver(fm.model, params)
    solver.tracer = Tracer(capacity=200000)
    result = solver.solve()
    edges = fm.tree_edges(result.best_solution.x)
    return result, edges, solver.tracer


def ablation_row(name, family, graph, seed):
    """One off-vs-modern pair on the same instance; both exact, on audited."""
    optimum = brute_force_steiner(graph) + graph.fixed_cost
    off_params = ParamSet(permutation_seed=seed)
    on_params = emphasis("modern").with_changes(permutation_seed=seed)
    off, _, _ = traced_flow_solve(graph, off_params)
    on, edges, tracer = traced_flow_solve(graph, on_params)
    audit = audit_cip_trace(tracer, on)
    cert = check_steiner_tree(graph, edges, on.objective)
    row = {
        "instance": name,
        "family": family,
        "seed": seed,
        "optimum": optimum,
        "off_nodes": off.nodes_processed,
        "on_nodes": on.nodes_processed,
        "node_ratio": on.nodes_processed / max(off.nodes_processed, 1),
        "off_exact": abs(off.objective - optimum) <= 1e-6,
        "on_exact": abs(on.objective - optimum) <= 1e-6,
        "audited": bool(audit.ok and not audit.skipped),
        "certified": bool(cert.ok),
        "conflicts": int(on.stats.extra.get("conflicts_learned", 0)),
        "orbital_fixings": int(on.stats.extra.get("orbital_fixings", 0)),
    }
    return row


def restart_probe():
    """Force an in-solve restart and hold it to the audit's accounting."""
    g = hypercube(dim=3, parity_terminals=True, perturbed=False, seed=0)
    optimum = brute_force_steiner(g) + g.fixed_cost
    params = emphasis("modern").with_changes(restart_min_nodes=10, restart_node_factor=1.5)
    result, edges, tracer = traced_flow_solve(g, params)
    audit = audit_cip_trace(tracer, result)
    accounting = next((c for c in audit.checks if c.name == "restart_accounting"), None)
    return {
        "restarts": int(result.stats.extra.get("restarts", 0)),
        "nodes": result.nodes_processed,
        "exact": abs(result.objective - optimum) <= 1e-6,
        "audited": bool(audit.ok and not audit.skipped),
        "restart_accounting_ok": bool(accounting is not None and accounting.ok),
        "certified": bool(check_steiner_tree(g, edges, result.objective).ok),
    }


def run_kernel_modern_ablation(permutation_seeds=PERMUTATION_SEEDS) -> dict:
    rows = []
    for seed in permutation_seeds:
        g = hypercube(dim=3, parity_terminals=True, perturbed=False, seed=0)
        rows.append(ablation_row(f"hc3u-parity-p{seed}", "hypercube", g, seed))
    for family, config in BREADTH_CONFIGS:
        gi = generate_family(family, seed=0, configs=(config,))[0]
        rows.append(ablation_row(gi.name, family, gi.instance, 0))
    ratios: dict[str, float] = {}
    for family in {r["family"] for r in rows}:
        ratios[family] = statistics.median(
            r["node_ratio"] for r in rows if r["family"] == family
        )
    return {
        "rows": rows,
        "median_ratio_by_family": ratios,
        "hypercube_median_ratio": ratios["hypercube"],
        "all_exact": all(r["off_exact"] and r["on_exact"] for r in rows),
        "all_certified": all(r["certified"] for r in rows),
        "all_audited": all(r["audited"] for r in rows),
        "restart_probe": restart_probe(),
    }


@pytest.mark.benchmark(group="kernel_modern")
def test_kernel_modern_ablation(benchmark):
    t0 = time.time()
    out = benchmark.pedantic(run_kernel_modern_ablation, rounds=1, iterations=1)
    print_table(
        "Modern kernel ablation: B&B nodes, features off vs `modern` preset",
        ["instance", "off", "modern", "ratio", "conflicts", "orb.fix", "audited"],
        [
            [r["instance"], r["off_nodes"], r["on_nodes"], f"{r['node_ratio']:.2f}",
             r["conflicts"], r["orbital_fixings"], "yes" if r["audited"] else "NO"]
            for r in out["rows"]
        ],
    )
    probe = out["restart_probe"]
    print(
        f"[bench] restart probe: {probe['restarts']} restart(s) over {probe['nodes']} nodes, "
        f"accounting {'ok' if probe['restart_accounting_ok'] else 'FAILED'}"
    )
    assert out["all_exact"], "an ablation arm missed the brute-force optimum"
    assert out["all_certified"] and out["all_audited"]
    assert probe["exact"] and probe["certified"] and probe["audited"]
    emit_bench_json("kernel_modern", {"wall_seconds": time.time() - t0, **out})
