"""Engine-overhead matrix: sim vs threads vs process across rank counts.

The four engines drive identical LoadCoordinator/ParaSolver state
machines, so any wall-clock difference at fixed (instance, ranks) is
pure run-time overhead: GIL contention and queue hops for the
ThreadEngine, spawn cost plus wire codec plus pipe syscalls for the
ProcessEngine.  This bench quantifies that tax — wall seconds,
nodes/second throughput and bytes on the wire — for 1, 2 and 4 ranks
on a branching-heavy instance where the work is real.  Every run is
capped at ``NODE_BUDGET`` nodes and each cell reports the best of three
runs: both together strip trajectory nondeterminism and cold-cache noise
out of a number that is meant to isolate engine overhead.

Honesty note: CI boxes are often single-core, so the ProcessEngine's
true parallelism cannot show a >1x speedup there; the numbers are
reported as measured, with the core count alongside, and nothing is
asserted about relative speed.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.common import emit_bench_json, print_table, run_steiner_ug, table1_instances

ENGINES = ("sim", "threads", "process")
RANKS = (1, 2, 4)

# the tuned wire path (PR 7): coalesce node transfers, debounce incumbent
# broadcasts — passed identically to every engine so the comparison stays
# apples-to-apples (sim/threads ignore the frame-level knobs by design)
WIRE_TUNING = {"net_batch_nodes": 8, "net_incumbent_debounce": 0.05}

# cap every run at a fixed node budget: racing makes full-solve trees
# nondeterministic (the same engine can explore 200 or 2000 nodes run to
# run), so uncapped nodes/s measures trajectory luck, not overhead; the
# budget pins each cell near steady-state throughput instead
NODE_BUDGET = 240


def _measure() -> list[dict]:
    from repro.ug.net.process_engine import warm_pool

    name, graph = table1_instances()[-1]  # hc5u: branching-heavy
    # pre-warm the reusable worker pool so no *measured* process run pays
    # interpreter start-up (spawn + numpy/scipy imports): serving and
    # benchmark workloads reuse workers, and this bench measures that mode
    warm_pool(max(RANKS))
    # best-of-3 with attempts interleaved across engines: the first round
    # doubles as the warm-up (cold CPU caches and lazy imports dominate
    # single cold runs), and interleaving means a background-load swing on
    # a shared CI box hits every engine alike instead of biasing whichever
    # one happened to run during the quiet stretch
    best: dict[tuple[str, int], dict] = {}
    for n in RANKS:
        for _attempt in range(3):
            for comm in ENGINES:
                t0 = time.perf_counter()
                res = run_steiner_ug(graph, n, comm=comm, node_limit=NODE_BUDGET, **WIRE_TUNING)
                wall = time.perf_counter() - t0
                nodes = res.stats.nodes_generated
                row = {
                    "instance": name,
                    "engine": comm,
                    "ranks": n,
                    "objective": res.objective,
                    "solved": res.solved,
                    "wall_seconds": round(wall, 4),
                    "nodes": nodes,
                    "nodes_per_second": round(nodes / wall, 2) if wall > 0 else None,
                    "wire_frames": res.stats.net_frames_sent,
                    "wire_bytes": res.stats.net_bytes_sent,
                    "idle_ratio": round(res.stats.idle_ratio, 4),
                    "pool_reuses": res.stats.warm_pool_reuses,
                }
                cell = (comm, n)
                if cell not in best or (row["nodes_per_second"] or 0.0) > (best[cell]["nodes_per_second"] or 0.0):
                    best[cell] = row
    return [best[(comm, n)] for comm in ENGINES for n in RANKS]


@pytest.mark.benchmark(group="engine_overhead")
def test_engine_overhead(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    # budget-capped rows need not prove optimality, but every run that did
    # solve must agree on the optimum (each incumbent is certificate-checked
    # inside run_steiner_ug regardless)
    objectives = {r["objective"] for r in rows if r["solved"]}
    assert len(objectives) <= 1, f"engines disagree on the optimum: {objectives}"
    print_table(
        f"Engine overhead on {rows[0]['instance']} ({os.cpu_count()} cores)",
        ["engine", "ranks", "wall s", "nodes", "nodes/s", "idle", "wire frames", "wire bytes"],
        [
            [r["engine"], r["ranks"], r["wall_seconds"], r["nodes"],
             r["nodes_per_second"], r["idle_ratio"], r["wire_frames"], r["wire_bytes"]]
            for r in rows
        ],
    )
    emit_bench_json(
        "engine_overhead",
        {"cpu_count": os.cpu_count(), "rows": rows},
    )


if __name__ == "__main__":  # pragma: no cover - manual runs
    for row in _measure():
        print(row)
