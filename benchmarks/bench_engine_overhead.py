"""Engine-overhead matrix: sim vs threads vs process across rank counts.

The four engines drive identical LoadCoordinator/ParaSolver state
machines, so any wall-clock difference at fixed (instance, ranks) is
pure run-time overhead: GIL contention and queue hops for the
ThreadEngine, spawn cost plus wire codec plus pipe syscalls for the
ProcessEngine.  This bench quantifies that tax — wall seconds,
nodes/second throughput and bytes on the wire — for 1, 2 and 4 ranks
on a branching-heavy instance where the work is real.

Honesty note: CI boxes are often single-core, so the ProcessEngine's
true parallelism cannot show a >1x speedup there; the numbers are
reported as measured, with the core count alongside, and nothing is
asserted about relative speed.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.common import emit_bench_json, print_table, run_steiner_ug, table1_instances

ENGINES = ("sim", "threads", "process")
RANKS = (1, 2, 4)


def _measure() -> list[dict]:
    name, graph = table1_instances()[-1]  # hc5u-d15: branching-heavy
    rows: list[dict] = []
    for comm in ENGINES:
        for n in RANKS:
            t0 = time.perf_counter()
            res = run_steiner_ug(graph, n, comm=comm)
            wall = time.perf_counter() - t0
            nodes = res.stats.nodes_generated
            rows.append(
                {
                    "instance": name,
                    "engine": comm,
                    "ranks": n,
                    "objective": res.objective,
                    "solved": res.solved,
                    "wall_seconds": round(wall, 4),
                    "nodes": nodes,
                    "nodes_per_second": round(nodes / wall, 2) if wall > 0 else None,
                    "wire_frames": res.stats.net_frames_sent,
                    "wire_bytes": res.stats.net_bytes_sent,
                    "idle_ratio": round(res.stats.idle_ratio, 4),
                }
            )
    return rows


@pytest.mark.benchmark(group="engine_overhead")
def test_engine_overhead(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    # every engine must agree on the answer before overhead means anything
    objectives = {r["objective"] for r in rows}
    assert len(objectives) == 1, f"engines disagree on the optimum: {objectives}"
    print_table(
        f"Engine overhead on {rows[0]['instance']} ({os.cpu_count()} cores)",
        ["engine", "ranks", "wall s", "nodes", "nodes/s", "wire frames", "wire bytes"],
        [
            [r["engine"], r["ranks"], r["wall_seconds"], r["nodes"],
             r["nodes_per_second"], r["wire_frames"], r["wire_bytes"]]
            for r in rows
        ],
    )
    emit_bench_json(
        "engine_overhead",
        {"cpu_count": os.cpu_count(), "rows": rows},
    )


if __name__ == "__main__":  # pragma: no cover - manual runs
    for row in _measure():
        print(row)
