"""Nightly regression gates over the committed bench baselines.

Three independent gates, each skipped (not failed) when its bench
artifact is absent:

* **engine_overhead** — reads ``BENCH_engine_overhead.json`` produced by
  ``bench_engine_overhead.py`` and compares the ProcessEngine throughput
  against ``benchmarks/baselines/engine_overhead.json``.
* **portfolio_racing** — reads ``BENCH_portfolio_racing.json`` produced
  by ``bench_portfolio_racing.py`` and checks, against
  ``benchmarks/baselines/portfolio_racing.json``, that enough races
  still survive racing to a declared winner, that the winner histogram
  spans enough generator families, and that every race stayed
  certificate-valid.
* **kernel_modern** — reads ``BENCH_kernel_modern.json`` produced by
  ``bench_kernel_modern.py`` and checks, against
  ``benchmarks/baselines/kernel_modern.json``, that the modern preset
  (conflict analysis + orbital fixing + restarts) still at least halves
  the parity-hypercube node count, that every feature-on solve stayed
  exact/certified/audited, and that the forced-restart probe fired and
  passed restart accounting.

Absolute nodes/s tracks whatever box CI landed on, so the gated metric is
the process/threads throughput *ratio* per rank count: both engines run
the same state machines on the same instance in the same job, so their
ratio cancels the box speed and isolates the wire-path overhead this PR
pays down.  The gate fails when a ratio drops more than ``tolerance``
(default 10%) below its committed baseline.

Usage::

    PYTHONPATH=src:. python benchmarks/check_regression.py [BENCH_JSON]

``BENCH_JSON`` defaults to ``$BENCH_OUTPUT_DIR/BENCH_engine_overhead.json``
(or the working directory when unset), matching where the bench writes it.
Exit status: 0 = within tolerance (or bench skipped), 1 = regression,
2 = unusable input.  A *missing* bench artifact is not an error — it means
the bench stage was skipped, and the gate reports that and passes; a
missing or malformed *baseline* is a repo defect and fails with a clear
message (never a traceback).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

BASELINES = Path(__file__).resolve().parent / "baselines"
BASELINE = BASELINES / "engine_overhead.json"
RACING_BASELINE = BASELINES / "portfolio_racing.json"
KERNEL_MODERN_BASELINE = BASELINES / "kernel_modern.json"


def load_ratios(rows: list[dict]) -> dict[str, float]:
    """Per-rank-count process/threads nodes-per-second ratios.

    Rows missing their identifying fields are skipped (the bench writes
    them; a hand-edited artifact must not crash the gate).
    """
    speed: dict[tuple[str, int], float] = {}
    for row in rows:
        if not isinstance(row, dict) or "engine" not in row or "ranks" not in row:
            continue
        nps = row.get("nodes_per_second")
        if nps:
            speed[(row["engine"], row["ranks"])] = float(nps)
    ratios: dict[str, float] = {}
    for (engine, ranks), nps in speed.items():
        if engine != "process":
            continue
        threads = speed.get(("threads", ranks))
        if threads:
            ratios[str(ranks)] = nps / threads
    return ratios


def check_engine_overhead(bench_path: Path) -> int:
    if not bench_path.exists():
        # the bench stage did not run (filtered CI, local dev box):
        # nothing to gate, and "nothing to gate" is not a failure
        print(f"[check_regression] bench skipped: no artifact at {bench_path}; nothing to gate")
        return 0
    try:
        bench = json.loads(bench_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"[check_regression] bench artifact {bench_path} is unreadable: {exc}", file=sys.stderr)
        return 2
    if not isinstance(bench, dict) or not isinstance(bench.get("rows"), list):
        print(
            f"[check_regression] bench artifact {bench_path} has no 'rows' list; "
            "was it produced by bench_engine_overhead.py?",
            file=sys.stderr,
        )
        return 2
    try:
        baseline = json.loads(BASELINE.read_text())
    except FileNotFoundError:
        print(
            f"[check_regression] committed baseline {BASELINE} is missing; "
            "regenerate it with bench_engine_overhead.py and commit it",
            file=sys.stderr,
        )
        return 2
    except (OSError, json.JSONDecodeError) as exc:
        print(f"[check_regression] baseline {BASELINE} is unreadable: {exc}", file=sys.stderr)
        return 2
    if not isinstance(baseline, dict) or not isinstance(baseline.get("ratios"), dict):
        print(
            f"[check_regression] baseline {BASELINE} has no 'ratios' mapping; "
            "it must map rank counts to process/threads throughput ratios",
            file=sys.stderr,
        )
        return 2

    current = load_ratios(bench["rows"])
    tolerance = float(baseline.get("tolerance", 0.10))
    expected: dict[str, float] = baseline["ratios"]

    failed = False
    for ranks, base in sorted(expected.items(), key=lambda kv: int(kv[0])):
        got = current.get(ranks)
        if got is None:
            print(f"[check_regression] MISSING ranks={ranks}: no process/threads pair in bench output")
            failed = True
            continue
        floor = base * (1.0 - tolerance)
        verdict = "ok" if got >= floor else "REGRESSION"
        failed |= got < floor
        print(
            f"[check_regression] ranks={ranks}: process/threads ratio "
            f"{got:.3f} vs baseline {base:.3f} (floor {floor:.3f}) -> {verdict}"
        )
    if failed:
        print(
            "[check_regression] ProcessEngine throughput regressed >"
            f"{tolerance:.0%} vs {BASELINE.name}",
            file=sys.stderr,
        )
        return 1
    print("[check_regression] within tolerance")
    return 0


def check_portfolio_racing(bench_path: Path) -> int:
    """Gate the portfolio-racing histogram against its committed floors."""
    if not bench_path.exists():
        print(f"[check_regression] bench skipped: no artifact at {bench_path}; nothing to gate")
        return 0
    try:
        bench = json.loads(bench_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"[check_regression] bench artifact {bench_path} is unreadable: {exc}", file=sys.stderr)
        return 2
    if not isinstance(bench, dict) or not isinstance(bench.get("winners"), dict):
        print(
            f"[check_regression] bench artifact {bench_path} has no 'winners' mapping; "
            "was it produced by bench_portfolio_racing.py?",
            file=sys.stderr,
        )
        return 2
    try:
        baseline = json.loads(RACING_BASELINE.read_text())
    except FileNotFoundError:
        print(
            f"[check_regression] committed baseline {RACING_BASELINE} is missing; "
            "regenerate it from bench_portfolio_racing.py output and commit it",
            file=sys.stderr,
        )
        return 2
    except (OSError, json.JSONDecodeError) as exc:
        print(f"[check_regression] baseline {RACING_BASELINE} is unreadable: {exc}", file=sys.stderr)
        return 2

    failed = False
    families = sorted(fam for fam, idxs in bench["winners"].items() if idxs)
    min_families = int(baseline.get("min_families_with_winners", 5))
    verdict = "ok" if len(families) >= min_families else "REGRESSION"
    failed |= verdict != "ok"
    print(
        f"[check_regression] families with declared winners: {len(families)} "
        f"(floor {min_families}: {', '.join(families) or 'none'}) -> {verdict}"
    )

    completed = int(bench.get("completed_races", 0))
    min_completed = int(baseline.get("min_completed_races", 0))
    verdict = "ok" if completed >= min_completed else "REGRESSION"
    failed |= verdict != "ok"
    print(
        f"[check_regression] races surviving to a declared winner: {completed} "
        f"(floor {min_completed}) -> {verdict}"
    )

    if baseline.get("require_all_certified", True):
        certified, n_races = int(bench.get("certified_races", -1)), int(bench.get("n_races", 0))
        verdict = "ok" if certified == n_races else "REGRESSION"
        failed |= verdict != "ok"
        print(f"[check_regression] certified races: {certified}/{n_races} -> {verdict}")

    if failed:
        print(
            f"[check_regression] portfolio racing regressed vs {RACING_BASELINE.name}",
            file=sys.stderr,
        )
        return 1
    print("[check_regression] portfolio racing within baseline")
    return 0


def check_kernel_modern(bench_path: Path) -> int:
    """Gate the modern-kernel ablation against its committed floors.

    Three checks, mirroring the acceptance criteria of the subsystem:
    the parity-hypercube median node ratio (modern/off) must stay at or
    below ``max_hypercube_ratio``; every feature-on solve must be exact,
    certificate-valid and trace-audited; and the forced-restart probe
    must have fired at least one restart whose ``restart_accounting``
    audit check passed.
    """
    if not bench_path.exists():
        print(f"[check_regression] bench skipped: no artifact at {bench_path}; nothing to gate")
        return 0
    try:
        bench = json.loads(bench_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"[check_regression] bench artifact {bench_path} is unreadable: {exc}", file=sys.stderr)
        return 2
    if not isinstance(bench, dict) or "hypercube_median_ratio" not in bench:
        print(
            f"[check_regression] bench artifact {bench_path} has no 'hypercube_median_ratio'; "
            "was it produced by bench_kernel_modern.py?",
            file=sys.stderr,
        )
        return 2
    try:
        baseline = json.loads(KERNEL_MODERN_BASELINE.read_text())
    except FileNotFoundError:
        print(
            f"[check_regression] committed baseline {KERNEL_MODERN_BASELINE} is missing; "
            "regenerate it from bench_kernel_modern.py output and commit it",
            file=sys.stderr,
        )
        return 2
    except (OSError, json.JSONDecodeError) as exc:
        print(f"[check_regression] baseline {KERNEL_MODERN_BASELINE} is unreadable: {exc}", file=sys.stderr)
        return 2

    failed = False
    ratio = float(bench["hypercube_median_ratio"])
    ceiling = float(baseline.get("max_hypercube_ratio", 0.5))
    verdict = "ok" if ratio <= ceiling else "REGRESSION"
    failed |= verdict != "ok"
    print(
        f"[check_regression] hypercube modern/off node ratio {ratio:.3f} "
        f"(ceiling {ceiling:.3f}) -> {verdict}"
    )

    for flag in ("all_exact", "all_certified", "all_audited"):
        require = baseline.get("require_" + flag, baseline.get("require_all_certified", True))
        if not require:
            continue
        ok = bool(bench.get(flag, False))
        verdict = "ok" if ok else "REGRESSION"
        failed |= not ok
        print(f"[check_regression] {flag}: {ok} -> {verdict}")

    if baseline.get("require_restart_probe", True):
        probe = bench.get("restart_probe") or {}
        ok = (
            int(probe.get("restarts", 0)) >= 1
            and bool(probe.get("restart_accounting_ok"))
            and bool(probe.get("exact"))
            and bool(probe.get("certified"))
        )
        verdict = "ok" if ok else "REGRESSION"
        failed |= not ok
        print(f"[check_regression] restart probe fired+accounted+certified: {ok} -> {verdict}")

    if failed:
        print(
            f"[check_regression] modern kernel regressed vs {KERNEL_MODERN_BASELINE.name}",
            file=sys.stderr,
        )
        return 1
    print("[check_regression] modern kernel within baseline")
    return 0


def main(argv: list[str]) -> int:
    out_dir = Path(os.environ.get("BENCH_OUTPUT_DIR", "."))
    engine_path = Path(argv[1]) if len(argv) > 1 else out_dir / "BENCH_engine_overhead.json"
    codes = (
        check_engine_overhead(engine_path),
        check_portfolio_racing(out_dir / "BENCH_portfolio_racing.json"),
        check_kernel_modern(out_dir / "BENCH_kernel_modern.json"),
    )
    return max(codes)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
