"""Ablation B — racing vs normal ramp-up (paper §2.2).

Racing attacks the root with diversified settings and keeps the winner's
tree; normal ramp-up grows parallelism from a single solver. Both must
reach the optimum; racing additionally yields the winner statistics the
MISDP hybrid exploits.
"""

from __future__ import annotations

import pytest

from benchmarks.common import emit_bench_json, print_table, run_steiner_ug, table1_instances
from repro.apps.misdp_plugins import MISDPUserPlugins
from repro.sdp.instances import min_k_partitioning
from repro.ug import ug
from repro.ug.config import UGConfig


def _run_ablation():
    rows = []
    name, graph = table1_instances()[-1]  # hc5u
    for ramp in ("normal", "racing"):
        res = run_steiner_ug(
            graph, 8, seed=0, ramp_up=ramp, racing_deadline=0.1, racing_open_node_threshold=16
        )
        rows.append(
            {
                "case": f"STP {name} / {ramp}",
                "objective": res.objective,
                "time": res.stats.computing_time,
                "nodes": res.stats.nodes_generated,
                "winner": res.stats.racing_winner,
                "solved": res.solved,
            }
        )
    misdp = min_k_partitioning(n=5, k=2, seed=3)
    for ramp in ("normal", "racing"):
        cfg = UGConfig(ramp_up=ramp, racing_deadline=0.1, time_limit=20.0,
                       objective_epsilon=1 - 1e-6)
        res = ug(misdp, MISDPUserPlugins(), n_solvers=8, comm="sim", config=cfg,
                 seed=0, wall_clock_limit=240.0).run()
        rows.append(
            {
                "case": f"MISDP mkp5 / {ramp}",
                "objective": -res.objective,
                "time": res.stats.computing_time,
                "nodes": res.stats.nodes_generated,
                "winner": res.stats.racing_winner,
                "solved": res.solved,
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_rampup(benchmark):
    rows = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    print_table(
        "Ablation B: normal vs racing ramp-up (8 solvers)",
        ["case", "objective", "time", "nodes", "winner"],
        [[r["case"], r["objective"], r["time"], r["nodes"], r["winner"] if r["winner"] else "-"] for r in rows],
    )
    emit_bench_json("ablation_rampup", {"rows": rows})
    # both ramp-ups find the same optimum per problem
    assert rows[0]["objective"] == pytest.approx(rows[1]["objective"])
    assert rows[2]["objective"] == pytest.approx(rows[3]["objective"], abs=1e-3)
    assert all(r["solved"] for r in rows)
