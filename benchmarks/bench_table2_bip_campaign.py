"""Table 2 — the bip52u campaign: checkpoint/restart runs at growing scale.

Paper shape to reproduce (§4.1, Table 2): a series of runs on an open
bip instance, each restarted from the previous checkpoint with (mostly)
more cores; per run we report computing time, idle ratio, transferred
nodes, initial/final primal & dual bounds, gap, generated nodes and open
nodes. Two hallmarks must show: the dual bound/gap improves
monotonically across runs, and the open-node count *collapses* at each
restart because only primitive nodes are checkpointed (271,781 -> 18 in
the paper's run 1.1 -> 1.2).
"""

from __future__ import annotations

import math

import pytest

from benchmarks.common import campaign_instance, emit_bench_json
from repro.obs.reporters import progress_report
from repro.ug.checkpoint import load_checkpoint

# (solvers, virtual time limit) per run — the ISM -> HLRN III ramp in
# small; like the paper's run 1.6, the last run gets an open-ended budget
RUN_PLAN = [(4, 1.2), (4, 1.2), (16, 1.5), (16, 1.5), (32, 2.0), (16, 60.0)]


def _run_campaign_with_restarts() -> list[dict]:
    """Full campaign with actual restart_from wiring."""
    import tempfile
    from pathlib import Path

    from repro.apps.stp_plugins import SteinerUserPlugins
    from repro.ug import ug
    from repro.ug.config import UGConfig

    name, graph = campaign_instance()
    ckpt = str(Path(tempfile.mkdtemp()) / "bip_campaign.json")
    rows: list[dict] = []
    restart_from = None
    for run_idx, (cores, tlimit) in enumerate(RUN_PLAN, start=1):
        saved_before = len(load_checkpoint(ckpt).nodes) if restart_from else None
        cfg = UGConfig(
            time_limit=tlimit,
            checkpoint_path=ckpt,
            checkpoint_interval=0.2,
            objective_epsilon=1 - 1e-6,
        )
        solver = ug(graph.copy(), SteinerUserPlugins(), n_solvers=cores, comm="sim",
                    config=cfg, seed=0, wall_clock_limit=900.0)
        res = solver.run(restart_from=restart_from)
        st = res.stats
        rows.append(
            {
                "run": f"1.{run_idx}",
                "cores": cores,
                "time": st.computing_time,
                "idle": st.idle_ratio,
                "transferred": st.transferred_nodes,
                "primal_init": st.primal_initial,
                "primal_final": st.primal_final,
                "dual_init": st.dual_initial,
                "dual_final": st.dual_final,
                "gap": st.gap_final,
                "nodes": st.nodes_generated,
                "open_final": st.open_nodes_final,
                "restarted_from": saved_before,
                "solved": res.solved,
            }
        )
        if res.solved:
            break
        restart_from = ckpt
    return rows


@pytest.mark.benchmark(group="table2")
def test_table2_bip_campaign(benchmark):
    rows = benchmark.pedantic(_run_campaign_with_restarts, rounds=1, iterations=1)
    report = progress_report("Table 2 analogue: bip80u checkpoint/restart campaign", rows)
    print(report.render())
    emit_bench_json("table2", {"report": report, "runs": rows})
    # paper shapes: gap never worsens across runs...
    gaps = [r["gap"] for r in rows if math.isfinite(r["gap"])]
    assert all(g2 <= g1 + 1e-9 for g1, g2 in zip(gaps, gaps[1:]))
    # ...and restarts collapse the open frontier to the primitive nodes
    for prev, cur in zip(rows, rows[1:]):
        if cur["restarted_from"] is not None and prev["open_final"] > 0:
            assert cur["restarted_from"] <= prev["open_final"]
    # the campaign must finish (the paper's run 1.6 reaches 0% gap)
    assert rows[-1]["solved"]
