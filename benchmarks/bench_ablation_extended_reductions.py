"""Ablation C — extended reduction techniques in massive B&B (paper §4.1).

The paper credits solving bip52u to combining (restricted) extended
reductions with the parallel search: "on these modified graphs the
extended reduction method often can lead to considerable further
reductions". This ablation toggles the extended tests in the
ParaSolvers' layered presolve and (a) measures reduction power directly
on branched subgraphs, (b) compares end-to-end parallel runs.
"""

from __future__ import annotations

import pytest

from benchmarks.common import campaign_instance, emit_bench_json, print_table, table1_instances
from repro.apps.stp_plugins import SteinerUserPlugins
from repro.cip.params import ParamSet
from repro.steiner.reductions import reduce_graph
from repro.ug import ug
from repro.ug.config import UGConfig
from repro.utils import make_rng


def _subgraph_reduction_power() -> dict:
    """Apply branching-style decisions, then reduce with and without the
    extended tests; report edges removed."""
    _, graph = campaign_instance()
    rng = make_rng(1)
    nonterms = [int(v) for v in graph.alive_vertices() if not graph.is_terminal(int(v))]
    picks = rng.choice(nonterms, size=min(10, len(nonterms)), replace=False)
    decided = graph.copy()
    for i, v in enumerate(picks):
        if i % 2 == 0:
            decided.delete_vertex(int(v))
        else:
            decided.set_terminal(int(v), True)
    base = decided.copy()
    reduce_graph(base, use_extended=False, seed=0)
    ext = decided.copy()
    reduce_graph(ext, use_extended=True, seed=0)
    return {
        "edges_before": decided.num_alive_edges,
        "edges_plain": base.num_alive_edges,
        "edges_extended": ext.num_alive_edges,
    }


def _end_to_end(extended: bool):
    name, graph = table1_instances()[-1]
    params = ParamSet().with_changes(**{"steiner/extended_reductions": extended})
    cfg = UGConfig(time_limit=1e9, objective_epsilon=1 - 1e-6)
    res = ug(graph.copy(), SteinerUserPlugins(), n_solvers=4, comm="sim",
             params=params, config=cfg, seed=0, wall_clock_limit=240.0).run()
    return res


def _run_ablation():
    power = _subgraph_reduction_power()
    on = _end_to_end(True)
    off = _end_to_end(False)
    return power, on, off


@pytest.mark.benchmark(group="ablation")
def test_ablation_extended_reductions(benchmark):
    power, on, off = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    print_table(
        "Ablation C: extended reductions on branched subgraphs",
        ["edges before", "after plain", "after extended"],
        [[power["edges_before"], power["edges_plain"], power["edges_extended"]]],
    )
    print_table(
        "Ablation C: end-to-end hc5u with 4 solvers",
        ["extended", "objective", "time", "nodes"],
        [
            ["on", on.objective, on.stats.computing_time, on.stats.nodes_generated],
            ["off", off.objective, off.stats.computing_time, off.stats.nodes_generated],
        ],
    )
    emit_bench_json(
        "ablation_extended_reductions",
        {
            "reduction_power": power,
            "end_to_end": {
                "on": {"objective": on.objective, "time": on.stats.computing_time,
                       "nodes": on.stats.nodes_generated},
                "off": {"objective": off.objective, "time": off.stats.computing_time,
                        "nodes": off.stats.nodes_generated},
            },
        },
    )
    # extended tests never reduce less than the plain pipeline
    assert power["edges_extended"] <= power["edges_plain"]
    # correctness is unaffected
    assert on.objective == pytest.approx(off.objective)
    assert on.solved and off.solved
