"""Table 3 — the hc10p pattern: improving a best-known solution across
racing restarts.

Paper shape to reproduce (§4.1, Table 3): start from a deliberately
weakened "best known" solution, run with racing ramp-up under a time
limit, keep the improved incumbent, and rerun from scratch seeded with
it ("since the best solution can be used for presolving, propagation and
heuristics"). Each run must end with a primal value no worse than it
started with, and the series must strictly improve at least once.
"""

from __future__ import annotations

import pytest

from benchmarks.common import emit_bench_json, improvement_instance, print_table
from repro.apps.stp_plugins import SteinerUserPlugins
from repro.ug import ParaSolution, ug
from repro.ug.config import UGConfig

RUNS = [(4, 0.5), (8, 0.5), (8, 4.0)]


def _run_improvement_series() -> list[dict]:
    name, graph = improvement_instance()

    # a deliberately weak starting solution (the DIMACS-era best-known):
    # the pure TM heuristic tree without local search
    from repro.steiner.heuristics import repeated_shortest_path_heuristic

    start = repeated_shortest_path_heuristic(graph, n_starts=1, seed=99)
    assert start is not None
    incumbent = ParaSolution(start[1] + 2.0)  # weakened further by +2

    rows = []
    for run_idx, (cores, tlimit) in enumerate(RUNS, start=1):
        cfg = UGConfig(
            ramp_up="racing",
            racing_deadline=0.1,
            racing_open_node_threshold=20,
            time_limit=tlimit,
            objective_epsilon=1 - 1e-6,
        )
        solver = ug(graph.copy(), SteinerUserPlugins(), n_solvers=cores, comm="sim",
                    config=cfg, seed=run_idx, wall_clock_limit=240.0)
        res = solver.run(initial_incumbent=incumbent)
        st = res.stats
        rows.append(
            {
                "run": run_idx,
                "cores": cores,
                "time": st.computing_time,
                "racing_time": st.racing_time,
                "primal_init": incumbent.value,
                "primal_final": min(st.primal_final, incumbent.value),
                "dual_final": st.dual_final,
                "nodes": st.nodes_generated,
                "solved": res.solved,
            }
        )
        if res.incumbent is not None and res.incumbent.value < incumbent.value:
            incumbent = res.incumbent
    return rows


@pytest.mark.benchmark(group="table3")
def test_table3_solution_improvement(benchmark):
    rows = benchmark.pedantic(_run_improvement_series, rounds=1, iterations=1)
    print_table(
        "Table 3 analogue: improving the best-known solution across racing restarts",
        ["run", "cores", "time", "racing_t", "primal in", "primal out", "dual", "nodes"],
        [
            [
                r["run"],
                r["cores"],
                r["time"],
                r["racing_time"] if r["racing_time"] is not None else "-",
                r["primal_init"],
                r["primal_final"],
                r["dual_final"],
                r["nodes"],
            ]
            for r in rows
        ],
    )
    emit_bench_json("table3", {"runs": rows})
    # each run never loses the seeded solution
    for r in rows:
        assert r["primal_final"] <= r["primal_init"] + 1e-9
    # the series strictly improves on the weakened best-known at least once
    assert rows[-1]["primal_final"] < rows[0]["primal_init"] - 1e-9
