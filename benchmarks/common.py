"""Shared helpers for the benchmark harness.

Every paper table/figure has one module in this directory; all run under
``pytest benchmarks/ --benchmark-only`` and print the regenerated
rows/series next to the paper's qualitative expectations (EXPERIMENTS.md
records the mapping). Times are *virtual seconds* of the SimEngine —
the substitute for the paper's wall-clock on real machines, see
DESIGN.md §4.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable

from repro.cip.params import ParamSet
from repro.obs.reporters import render_table, write_bench_json
from repro.steiner.graph import SteinerGraph
from repro.steiner.instances import (
    bipartite_instance,
    code_cover_instance,
    hypercube_instance,
)
from repro.ug import UGResult, ug
from repro.ug.config import UGConfig
from repro.utils import make_rng


# --- instance builders -------------------------------------------------------

def partial_hypercube(dim: int, seed: int, drop: float = 0.15) -> SteinerGraph:
    """Unit hypercube with a random fraction of edges removed (keeps the
    reduction-resistance, changes the tree shape)."""
    g = hypercube_instance(dim, perturbed=False, seed=seed)
    rng = make_rng(seed)
    for eid in list(g.alive_edges()):
        e = g.edges[eid]
        if rng.random() < drop and g.degree(e.u) > 2 and g.degree(e.v) > 2:
            g.delete_edge(eid)
    return g


def narrow_costs(g: SteinerGraph, seed: int, lo: int = 10, hi: int = 12) -> SteinerGraph:
    """Replace costs with narrowly spread integers — the PUC 'p' flavour
    that keeps instances resistant to bound-based reductions."""
    rng = make_rng(seed)
    for e in g.edges:
        e.cost = float(rng.integers(lo, hi + 1))
    g.invalidate_caches()  # costs were rewritten in place
    return g


def table1_instances() -> list[tuple[str, SteinerGraph]]:
    """Five PUC-style instances spanning the paper's Table 1 spectrum,
    from root-dominated (cc3-4p: no parallelism to exploit) to
    branching-heavy (hc5u: parallelism pays). Terminal fractions follow
    the real cc instances (~12%)."""
    return [
        ("cc3-4p", narrow_costs(code_cover_instance(3, 4, perturbed=False, seed=2, terminal_fraction=8 / 64), 2)),
        ("cc3-5u", code_cover_instance(3, 5, perturbed=False, seed=2, terminal_fraction=0.1)),
        ("hc5u-d15", partial_hypercube(5, 7, drop=0.15)),
        ("hc6u-d25", partial_hypercube(6, 3, drop=0.25)),
        ("hc5u", hypercube_instance(5, perturbed=False, seed=1)),
    ]


def campaign_instance() -> tuple[str, SteinerGraph]:
    """The bip52u analogue for the Table 2 campaign: a unit-cost bipartite
    instance that resists presolve and needs a deep B&B search (~100
    sequential nodes at ~25s wall)."""
    return "bip80u", bipartite_instance(40, 80, degree=3, perturbed=False, seed=7)


def improvement_instance() -> tuple[str, SteinerGraph]:
    """The hc10p analogue for Table 3's solution-improvement series."""
    return "hc5u-s9", hypercube_instance(5, perturbed=False, seed=9)


# --- run helpers -------------------------------------------------------------

STP_PARAMS = ParamSet(heur_frequency=5)


def run_steiner_ug(
    graph: SteinerGraph,
    n_solvers: int,
    *,
    comm: str = "sim",
    wall_clock_limit: float = 240.0,
    seed: int = 0,
    **config_kwargs,
) -> UGResult:
    from repro.apps.stp_plugins import SteinerUserPlugins

    config_kwargs.setdefault("time_limit", 1e9)
    config_kwargs.setdefault("objective_epsilon", 1 - 1e-6)
    config = UGConfig(**config_kwargs)
    solver = ug(
        graph.copy(),
        SteinerUserPlugins(),
        n_solvers=n_solvers,
        comm=comm,
        params=STP_PARAMS,
        config=config,
        seed=seed,
        wall_clock_limit=wall_clock_limit,
    )
    result = solver.run()
    verify_steiner_result(graph, result)
    return result


def verify_steiner_result(graph: SteinerGraph, result: UGResult) -> None:
    """Certificate-check every benchmark result before it is reported.

    The incumbent tree is re-validated on the *input* graph and its
    weight recomputed; if the run was traced, the B&B invariants are
    audited too. A failing check raises
    :class:`~repro.exceptions.VerificationError` — a benchmark row must
    never be built from an uncertified claim.
    """
    from repro.verify import audit_ug_run, check_ug_steiner_result

    report = check_ug_steiner_result(graph, result)
    report.merge(audit_ug_run(result))
    report.raise_if_failed()


# --- table formatting & artifacts ---------------------------------------------

def print_table(title: str, header: list[str], rows: Iterable[Iterable[object]]) -> None:
    """Render via the shared reporter so benchmarks and reports agree."""
    print(render_table(title, list(header), rows))


def emit_bench_json(name: str, payload: Any) -> Path:
    """Write the machine-readable ``BENCH_<name>.json`` companion artifact.

    Destination is ``$BENCH_OUTPUT_DIR`` (created if missing) or the
    working directory; every bench module calls this once per table so CI
    can upload the artifacts alongside the printed text.
    """
    path = write_bench_json(name, payload)
    print(f"[bench] wrote {path}")
    return path
