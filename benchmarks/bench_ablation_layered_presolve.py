"""Ablation A — layered presolving on/off (paper §2.2).

UG presolves once at the LoadCoordinator and *again* for every received
subproblem. This ablation disables the second layer for ug[SteinerJack]
and compares total B&B nodes. Re-presolving subproblems shrinks the
subgraphs ("the underlying graph can take a very different shape deep in
the B&B tree") but also diversifies search paths — the paper observes
both speedups (bip52u) and slowdowns (Mk-P) from this layer, so the
asserted invariant is correctness, with node counts reported.
"""

from __future__ import annotations

import pytest

from benchmarks.common import emit_bench_json, print_table, table1_instances
from repro.apps.stp_plugins import SteinerUserPlugins
from repro.cip.params import ParamSet
from repro.ug import ug
from repro.ug.config import UGConfig


def _run(graph, layered: bool):
    params = ParamSet().with_changes(**{"ug/layered_presolve": layered})
    cfg = UGConfig(time_limit=1e9, objective_epsilon=1 - 1e-6)
    solver = ug(graph.copy(), SteinerUserPlugins(), n_solvers=4, comm="sim",
                params=params, config=cfg, seed=0, wall_clock_limit=240.0)
    res = solver.run()
    return res


def _run_ablation():
    rows = []
    for name, graph in table1_instances()[2:]:  # the branching-heavy ones
        on = _run(graph, layered=True)
        off = _run(graph, layered=False)
        rows.append(
            {
                "name": name,
                "nodes_on": on.stats.nodes_generated,
                "nodes_off": off.stats.nodes_generated,
                "time_on": on.stats.computing_time,
                "time_off": off.stats.computing_time,
                "obj_on": on.objective,
                "obj_off": off.objective,
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_layered_presolve(benchmark):
    rows = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    print_table(
        "Ablation A: layered presolving (4 solvers)",
        ["instance", "nodes layered", "nodes off", "time layered", "time off"],
        [[r["name"], r["nodes_on"], r["nodes_off"], r["time_on"], r["time_off"]] for r in rows],
    )
    emit_bench_json("ablation_layered_presolve", {"rows": rows})
    for r in rows:
        assert r["obj_on"] == pytest.approx(r["obj_off"])  # both must be optimal
    # Node counts may move either way: re-presolving subproblems shrinks
    # the subgraphs but also *changes the search paths* — the paper reports
    # exactly this effect ("the additional local presolving performed by
    # the UG framework leads to different search paths being taken...
    # which for some reason are worse" on Mk-P). The invariant is
    # correctness at unchanged optima, asserted above.
