"""Serving-layer benchmark: admission + scheduling overhead and cache wins.

Three measurements on one in-process daemon (SimEngine workers, so the
numbers isolate the *serving* overhead from solver speed):

* **throughput** — wall time to push a batch of small solve jobs through
  submit -> schedule -> solve -> certify -> journal, vs solving the same
  instances directly through ``ug(...)``; the delta is the end-to-end
  price of admission control, journaling and certification;
* **cache** — latency of a repeat submission served from the verified
  fingerprint cache vs its original cold solve;
* **shedding** — cost of a rejected submission under saturation (the
  daemon's 429 path must be cheap: rejections are the overload valve).

Emits ``BENCH_serve.json`` for CI trend tracking.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from benchmarks.common import emit_bench_json, print_table
from repro.apps.stp_plugins import SteinerUserPlugins
from repro.serve import JobRequest, QueueFullError, ServeClient, ServeConfig, daemon_in_thread
from repro.steiner.instances import grid_instance
from repro.ug import ug

N_JOBS = 8


def payload(seed: int) -> dict:
    return {"generator": "grid", "params": {"rows": 3, "cols": 4, "n_terminals": 5, "seed": seed}}


def bench_direct() -> float:
    # the solver memoizes per-instance work, so the first solve of each
    # instance pays a one-time cost; warm every timed instance first so
    # both the direct and the served pass measure warm solves and the
    # delta isolates the serving overhead
    for seed in range(N_JOBS):
        params = payload(seed)["params"]
        ug(grid_instance(**params), SteinerUserPlugins(), n_solvers=1, comm="sim").run()
    t0 = time.perf_counter()
    for seed in range(N_JOBS):
        params = payload(seed)["params"]
        ug(grid_instance(**params), SteinerUserPlugins(), n_solvers=1, comm="sim").run()
    return time.perf_counter() - t0


def main() -> None:
    journal = Path(tempfile.mkdtemp(prefix="repro-bench-serve-")) / "journal.jsonl"
    direct = bench_direct()
    rows = []
    config = ServeConfig(journal_path=str(journal), slots=2, max_queue_depth=N_JOBS + 2)
    with daemon_in_thread(config) as daemon:
        client = ServeClient(port=daemon.port)

        # -- throughput through the full serving stack ----------------------
        t0 = time.perf_counter()
        views = [client.submit(JobRequest(kind="stp", payload=payload(s))) for s in range(N_JOBS)]
        for view in views:
            client.wait(view["job_id"], timeout=300)
        served = time.perf_counter() - t0
        rows.append(["direct ug() x%d" % N_JOBS, f"{direct:.3f}s", "-"])
        rows.append(["served x%d" % N_JOBS, f"{served:.3f}s",
                     f"{(served - direct) / N_JOBS * 1e3:.1f} ms/job overhead"])

        # -- cache hit latency ----------------------------------------------
        t0 = time.perf_counter()
        hit = client.submit(JobRequest(kind="stp", payload=payload(0)))
        cache_latency = time.perf_counter() - t0
        assert hit["outcome"]["from_cache"]
        rows.append(["cache hit", f"{cache_latency * 1e3:.2f} ms", "verified on insert"])

        # -- load-shedding cost ---------------------------------------------
        # saturate both slots with ~2s jobs and fill the queue, then time
        # the 429 path: rejections must stay cheap under overload
        slow = {"generator": "hypercube", "params": {"dim": 6, "perturbed": False}}
        blockers = [
            client.submit(JobRequest(kind="stp", payload=slow, node_limit=20, seed=s))
            for s in (0, 1)
        ]
        filled = 0
        for seed in range(200, 200 + config.max_queue_depth + 2):
            try:
                client.submit(JobRequest(kind="stp", payload=payload(seed)))
                filled += 1
            except QueueFullError:
                break
        rejected, t0 = 0, time.perf_counter()
        for seed in range(100, 160):
            try:
                client.submit(JobRequest(kind="stp", payload=payload(seed)))
            except QueueFullError:
                rejected += 1
        shed = time.perf_counter() - t0
        rows.append(["shed 60 submits", f"{shed:.3f}s",
                     f"{rejected} rejected ({shed / 60 * 1e3:.2f} ms each)"])
        for view in blockers:
            client.wait(view["job_id"], timeout=300)

        stats = client.stats()
        client.close()

    print_table("serve overhead (SimEngine workers)", ["measurement", "wall", "notes"], rows)
    emit_bench_json(
        "serve",
        {
            "n_jobs": N_JOBS,
            "direct_seconds": direct,
            "served_seconds": served,
            "overhead_ms_per_job": (served - direct) / N_JOBS * 1e3,
            "cache_hit_ms": cache_latency * 1e3,
            "shed_rejected": rejected,
            "serve_stats": stats["serve"],
        },
    )


def test_bench_serve():
    """Pytest entry point so CI runs this under the bench job."""
    main()


if __name__ == "__main__":
    main()
