"""Portfolio racing over the generator zoo — Figure-1-style histogram.

Races the :data:`~repro.apps.stp_plugins.STP_PORTFOLIOS` heuristic
portfolios against each other (racing ramp-up, deterministic SimEngine)
on instances from every STP generator family and records which portfolio
wins per family. Mirrors the shape of the paper's Figure 1: instances
solved *during* racing are excluded from the winner statistics and
reported separately (tree-like families — ``pace``, ``orlib_euclidean``
— fall almost entirely in that bucket; the reduction-resistant unit-cost
shapes are the ones whose races survive to a verdict).

Each race rotates which ParaSolver rank holds which portfolio so that
rank-order tie-breaking cannot systematically favour one portfolio.

``run_portfolio_races`` is imported by ``tests/test_portfolio_racing.py``
to assert the histogram is reproducible seed-for-seed.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import emit_bench_json
from repro.apps.stp_plugins import STP_PORTFOLIOS, SteinerUserPlugins
from repro.cip.params import ParamSet
from repro.instances import generate_family
from repro.obs.reporters import winner_histogram_report
from repro.ug import ug
from repro.ug.config import UGConfig
from repro.verify.steiner import check_ug_steiner_result

N_SOLVERS = len(STP_PORTFOLIOS)  # one rank per portfolio

#: per-family configs tuned so a useful share of races *survives* racing
#: (unit costs / parity terminals resist presolve); see module docstring
RACE_CONFIGS: tuple[tuple[str, dict], ...] = (
    ("hypercube", {"dim": 4, "perturbed": False, "parity_terminals": True}),
    ("orlib_random", {"n": 60, "m": 150, "n_terminals": 12, "max_cost": 1}),
    ("orlib_euclidean", {"n": 70, "n_terminals": 14, "k_nearest": 3, "rounded": True}),
    ("pace", {"n": 120, "n_chords": 80, "n_terminals": 24, "max_cost": 1}),
    ("grid_holes", {"rows": 9, "cols": 9, "n_holes": 2, "perturbed": False, "n_terminals": 14}),
    ("incidence", {"n": 60, "extra_edges": 100, "n_terminals": 12, "max_weight": 1}),
)

PORTFOLIO_NAMES = tuple(name for name, _ in STP_PORTFOLIOS)


class RotatedPortfolioPlugins(SteinerUserPlugins):
    """SteinerUserPlugins with the racing settings rotated by ``rotation``.

    Ties in the winner selection break toward the lowest rank; rotating
    the portfolio -> rank assignment per race removes that positional
    advantage (Latin-square style), so a portfolio that keeps winning
    does so on merit.
    """

    def __init__(self, rotation: int = 0) -> None:
        self.rotation = rotation

    def racing_param_sets(self, n: int, base: ParamSet) -> list[ParamSet]:
        sets = super().racing_param_sets(n, base)
        r = self.rotation % len(sets)
        return sets[r:] + sets[:r]


def race_once(instance, rotation: int, seed: int) -> dict:
    """One deterministic SimEngine race; returns the outcome record."""
    plugins = RotatedPortfolioPlugins(rotation)
    cfg = UGConfig(
        ramp_up="racing",
        racing_deadline=0.02,
        racing_open_node_threshold=2,
        status_interval_work=0.0005,
        time_limit=60.0,
        trace_enabled=True,
    )
    solver = ug(instance.copy(), plugins, n_solvers=N_SOLVERS, comm="sim",
                params=ParamSet(), config=cfg, seed=seed, wall_clock_limit=600.0)
    res = solver.run()
    sets = plugins.racing_param_sets(N_SOLVERS, ParamSet())

    def portfolio_of_setting(k: int) -> str:
        return sets[(k - 1) % len(sets)].get_extra("stp/portfolio")

    outcome: dict = {
        "solved": res.solved,
        "objective": res.objective,
        "certified": bool(check_ug_steiner_result(instance, res).ok),
        "winner_portfolio": None,
        "first_finisher": None,
    }
    if res.stats.racing_winner is not None:
        outcome["winner_portfolio"] = portfolio_of_setting(res.stats.racing_winner)
    else:
        ev = res.trace.events("solved_in_racing") if res.trace is not None else []
        if ev:  # excluded from the histogram, tracked for the caption
            outcome["first_finisher"] = portfolio_of_setting(((ev[0].rank - 1) % N_SOLVERS) + 1)
    return outcome


def run_portfolio_races(
    seeds: tuple[int, ...] = (11, 12, 13, 14),
    configs: tuple[tuple[str, dict], ...] = RACE_CONFIGS,
) -> dict:
    """Race every family x seed; returns the aggregated payload.

    Winner histograms are keyed by the 1-based index into
    :data:`STP_PORTFOLIOS` so ``winner_histogram_report`` can label each
    row with the portfolio's name. ``configs`` defaults to the full
    family sweep; the racing tests pass a cheap subset.
    """
    index_of = {name: i + 1 for i, name in enumerate(PORTFOLIO_NAMES)}
    winners: dict[str, list[int]] = {fam: [] for fam, _ in configs}
    first_finishers: dict[str, list[int]] = {fam: [] for fam, _ in configs}
    excluded: dict[str, int] = {fam: 0 for fam, _ in configs}
    races: list[dict] = []
    rotation = 0
    for fam, config in configs:
        for seed in seeds:
            gi = generate_family(fam, seed=seed, configs=(config,))[0]
            out = race_once(gi.instance, rotation, seed)
            out.update(family=fam, instance=gi.name, seed=seed, rotation=rotation)
            races.append(out)
            rotation += 1
            if out["winner_portfolio"] is not None:
                winners[fam].append(index_of[out["winner_portfolio"]])
            else:
                excluded[fam] += 1
                if out["first_finisher"] is not None:
                    first_finishers[fam].append(index_of[out["first_finisher"]])
    return {
        "portfolios": list(PORTFOLIO_NAMES),
        "winners": winners,
        "first_finishers": first_finishers,
        "excluded": excluded,
        "races": races,
        "n_races": len(races),
        "completed_races": sum(len(v) for v in winners.values()),
        "certified_races": sum(1 for r in races if r["certified"]),
    }


@pytest.mark.benchmark(group="portfolio_racing")
def test_portfolio_racing_histogram(benchmark):
    t0 = time.time()
    out = benchmark.pedantic(run_portfolio_races, rounds=1, iterations=1)
    report = winner_histogram_report(
        f"Portfolio racing winners per family ({sum(out['excluded'].values())} races "
        "solved during racing excluded, as in Figure 1)",
        out["winners"],
        len(PORTFOLIO_NAMES),
        setting_kind=lambda k: PORTFOLIO_NAMES[k - 1],
    )
    print(report.render())
    assert out["certified_races"] == out["n_races"], "every race must yield a valid tree"
    emit_bench_json(
        "portfolio_racing",
        {
            "report": report,
            "wall_seconds": time.time() - t0,
            **{k: v for k, v in out.items() if k != "races"},
            "races": out["races"],
        },
    )
