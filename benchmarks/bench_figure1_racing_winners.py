"""Figure 1 — racing ramp-up winner statistics per setting over CBLIB.

Paper shape to reproduce (§4.2, Figure 1): for each instance that
survives racing, record which setting won; odd settings are SDP-based,
even settings LP-based. Expected pattern: CLS winners are almost
exclusively LP (even) settings, Mk-P winners almost exclusively SDP
(odd) settings, TTD mixed; instances solved *during* racing are excluded
from the statistics, as in the paper.
"""

from __future__ import annotations

import pytest

from benchmarks.common import emit_bench_json
from repro.apps.misdp_plugins import MISDPUserPlugins
from repro.obs.reporters import winner_histogram_report
from repro.cip.params import ParamSet
from repro.sdp.instances import (
    cardinality_least_squares,
    min_k_partitioning,
    truss_topology_design,
)
from repro.ug import ug
from repro.ug.config import UGConfig

N_SOLVERS = 8  # settings 1..8; odd = SDP, even = LP
FAMILIES = ("TTD", "CLS", "Mk-P")


def _figure1_suite():
    """Larger instances than the Table 4 suite so races survive long
    enough to declare winners (small ones are solved during racing)."""
    out = []
    for t in range(4):
        inst = truss_topology_design(n_cols=2, seed=30 + t)
        out.append(("TTD", inst.name, inst))
    for t in range(4):
        inst = cardinality_least_squares(n_features=5, n_samples=6, seed=30 + t)
        out.append(("CLS", inst.name, inst))
    for t in range(4):
        inst = min_k_partitioning(n=6, k=2, seed=30 + t)
        out.append(("Mk-P", inst.name, inst))
    return out


def _run_figure1() -> dict:
    suite = _figure1_suite()
    winners: dict[str, list[int]] = {fam: [] for fam in FAMILIES}
    excluded = 0
    for fam, name, misdp in suite:
        cfg = UGConfig(
            ramp_up="racing",
            racing_deadline=0.08,
            racing_open_node_threshold=30,
            time_limit=10.0,
        )
        solver = ug(misdp, MISDPUserPlugins(), n_solvers=N_SOLVERS, comm="sim",
                    params=ParamSet(), config=cfg, seed=1, wall_clock_limit=60.0)
        res = solver.run()
        if res.stats.racing_winner is None:
            excluded += 1  # solved during racing — excluded like the paper
            continue
        winners[fam].append(res.stats.racing_winner)
    return {"winners": winners, "excluded": excluded}


@pytest.mark.benchmark(group="figure1")
def test_figure1_racing_winners(benchmark):
    out = benchmark.pedantic(_run_figure1, rounds=1, iterations=1)
    winners = out["winners"]
    report = winner_histogram_report(
        f"Figure 1 analogue: racing winners per setting (odd=SDP, even=LP); "
        f"{out['excluded']} instances solved during racing excluded",
        winners,
        N_SOLVERS,
        setting_kind=lambda k: "SDP" if k % 2 == 1 else "LP",
    )
    print(report.render())
    emit_bench_json("figure1", {"report": report, "winners": winners, "excluded": out["excluded"]})

    def lp_share(fam: str) -> float:
        total = len(winners[fam])
        if total == 0:
            return 0.5
        return sum(1 for w in winners[fam] if w % 2 == 0) / total

    # the paper's pattern: CLS prefers LP-based settings at least as much
    # as Mk-P does (CLS "only LP settings are chosen"; Mk-P "almost
    # exclusively SDP-based settings")
    if winners["CLS"] and winners["Mk-P"]:
        assert lp_share("CLS") >= lp_share("Mk-P")
    # some races must complete — otherwise the figure is empty
    assert sum(len(v) for v in winners.values()) >= 1
